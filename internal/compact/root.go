package compact

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/mvcc"
	"repro/internal/prix"
	"repro/internal/twig"
	"repro/internal/xmltree"
)

// ErrCompacting reports that a compaction is already running on this Root.
var ErrCompacting = errors.New("compact: compaction already in progress")

// Root is a live, serving view of an epoch-root directory: it opens the
// current epoch's DynamicIndex, serves queries and inserts through it, and
// swaps to a freshly compacted epoch with zero downtime. It implements the
// server's Source, inserter, and epoch interfaces, so prixserve can serve a
// Root exactly like a bare DynamicIndex — except that query cache keys pick
// up the epoch, invalidating for free across a swap.
type Root struct {
	dir  string
	opts prix.Options
	// fs, when non-nil, carries the compactor's non-page writes (tests
	// inject failing filesystems here); nil means the OS.
	fs ingest.FS

	// mu guards the (di, epoch) pair. Queries hold it as readers for their
	// whole duration, so the swap's write-lock acquisition doubles as a
	// drain barrier: once the swap holds mu, no query references the old
	// epoch and its files can be closed immediately.
	mu    sync.RWMutex
	di    *prix.DynamicIndex
	epoch uint64
	// genBase folds superseded epochs' insert counts into Generation: each
	// swap adds the old epoch's count plus one tick, so the value stays
	// strictly monotonic even though the new epoch's counter restarts.
	genBase uint64

	// insertMu serializes writers and is the freeze latch: the compactor
	// holds it across the catch-up + swap window, so the pause inserts see
	// is exactly Report.Pause.
	insertMu sync.Mutex

	// hooks are Root-level OnInsert hooks, re-registered onto each epoch's
	// index via the fireHooks forwarder so registrations survive swaps.
	hooksMu sync.Mutex
	hooks   []func()

	// swapMu + swapPending implement the scrubber gate: a scrub pass holds
	// swapMu as a reader while checking invariants; the swap takes it as a
	// writer. swapPending makes the gate non-blocking for the scrubber (it
	// skips, rather than stalls, a pass that collides with a swap).
	swapMu      sync.RWMutex
	swapPending atomic.Bool

	compacting atomic.Bool
}

// OpenRoot opens dir for live serving, first finishing any compaction a
// crash interrupted (resuming from its manifest checkpoint, or committing
// and cleaning up one that had already published). The directory may be a
// plain dynamic index or an epoch root; opts follows prix.Open semantics
// (Dir is taken from dir).
func OpenRoot(dir string, opts prix.Options) (*Root, error) {
	if _, err := Recover(Options{Dir: dir, BufferPoolPages: opts.BufferPoolPages, OpenFile: opts.OpenFile, HotBudget: opts.HotBudget}); err != nil {
		return nil, err
	}
	resolved, epoch, err := resolveDir(ingest.OSFS{}, dir)
	if err != nil {
		return nil, err
	}
	di, err := prix.OpenDynamic(resolved, opts)
	if err != nil {
		return nil, err
	}
	r := &Root{dir: dir, opts: opts, di: di, epoch: epoch}
	di.OnInsert(r.fireHooks)
	return r, nil
}

// Recover finishes an interrupted compaction of dir, if any; with no
// pending manifest it does nothing. Unlike ResumeOrRun it never starts a
// fresh compaction, so it is safe to call unconditionally at startup.
func Recover(o Options) (*Report, error) {
	rep, err := Resume(o)
	if errors.Is(err, ErrNoManifest) {
		return nil, nil
	}
	return rep, err
}

func (r *Root) fireHooks() {
	r.hooksMu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.hooksMu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// Match serves a query against the current epoch. The read lock spans the
// whole query, pinning the epoch's files open until it returns.
func (r *Root) Match(q *twig.Query, opts prix.MatchOptions) ([]prix.Match, *prix.QueryStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.Match(q, opts)
}

// Insert adds one document to the current epoch. During a swap's freeze
// window it blocks (for Report.Pause) and then lands in the new epoch.
func (r *Root) Insert(doc *xmltree.Document) error {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.Insert(doc)
}

// Delete tombstones a document as of a new version. Like Insert it
// serializes with other writers (and blocks through a swap's freeze
// window) via insertMu, which is also what lets the compactor assume no
// mutation lands while it holds the freeze.
func (r *Root) Delete(docID uint32) (uint64, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.Delete(docID)
}

// Update replaces a document's content as of a new version.
func (r *Root) Update(docID uint32, doc *xmltree.Document) (*prix.UpdateResult, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.Update(docID, doc)
}

// Patch applies a minimal sequence diff to a document.
func (r *Root) Patch(docID uint32, p *mvcc.Patch) (*prix.UpdateResult, error) {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.Patch(docID, p)
}

// VersionStats reports the current epoch's MVCC state.
func (r *Root) VersionStats() prix.VersionStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.VersionStats()
}

// PagesRead proxies the current epoch's physical-read counter.
func (r *Root) PagesRead() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.PagesRead()
}

// NumDocs returns the current epoch's document count.
func (r *Root) NumDocs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.NumDocs()
}

// HotStats snapshots the current epoch's compressed hot tier (each epoch
// owns a fresh tier; a swap starts the counters over).
func (r *Root) HotStats() prix.HotStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.HotStats()
}

// Extended reports whether the index is an EPIndex.
func (r *Root) Extended() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.Extended()
}

// Quarantined proxies the current epoch's quarantined docids.
func (r *Root) Quarantined() []uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di.Quarantined()
}

// Generation counts successful inserts across epochs plus one tick per
// swap, so any cache keyed on it invalidates when either happens. Swaps
// fold the retired epoch's count into a base rather than resetting, so the
// value never repeats within a process lifetime.
func (r *Root) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.genBase + r.di.Generation()
}

// OnInsert registers a hook run after every successful insert and after
// every epoch swap (the swap fires the hooks once, standing in for the
// cache invalidation an insert would have triggered).
func (r *Root) OnInsert(fn func()) {
	r.hooksMu.Lock()
	defer r.hooksMu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// TopologyEpoch exposes the compaction epoch to the executor's cache key,
// the same slot a sharded coordinator fills with its placement epoch: a
// result computed against one epoch's files can never be served from cache
// once a swap committed a different set.
func (r *Root) TopologyEpoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.epoch
}

// Epoch returns the serving epoch (0 until the first compaction commits).
func (r *Root) Epoch() uint64 { return r.TopologyEpoch() }

// Compacting reports whether a compaction is currently running.
func (r *Root) Compacting() bool { return r.compacting.Load() }

// RepairForest rebuilds the current epoch's forest from surviving records.
func (r *Root) RepairForest() ([]uint32, error) {
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.RepairForest()
}

// Index returns the current epoch's DynamicIndex for callers that need the
// raw handle (the scrubber's Source hook). The handle is only valid until
// the next swap; combine with Gate to avoid inspecting a mid-swap epoch.
func (r *Root) Index() *prix.DynamicIndex {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.di
}

// Flush persists the current epoch's directory metadata.
func (r *Root) Flush() error {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.RLock()
	di := r.di
	r.mu.RUnlock()
	return di.Flush()
}

// Close flushes and closes the current epoch.
func (r *Root) Close() error {
	r.insertMu.Lock()
	defer r.insertMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.di.Flush(); err != nil {
		return err
	}
	return r.di.Close()
}

// Gate is the swap gate handed to scrubbers (it satisfies scrub.SwapGate):
// TryEnter succeeds only while no epoch swap is pending or in progress, and
// holds the swap out until Exit. A scrubber that fails TryEnter skips the
// segment instead of reporting forest-invariant violations against files
// that are mid-swap.
type Gate struct{ r *Root }

// Gate returns the Root's swap gate.
func (r *Root) Gate() *Gate { return &Gate{r: r} }

// TryEnter attempts to start a swap-sensitive read pass. It never blocks:
// if a swap is pending (or another TryEnter raced the writer), it returns
// false and the caller should skip.
func (g *Gate) TryEnter() bool {
	if g.r.swapPending.Load() {
		return false
	}
	return g.r.swapMu.TryRLock()
}

// Exit ends a pass started by a successful TryEnter.
func (g *Gate) Exit() { g.r.swapMu.RUnlock() }

// CompactOptions tunes one online compaction.
type CompactOptions struct {
	// MemBudget bounds buffered bytes (0 = 32 MiB); pinned in the manifest.
	MemBudget int64
	// CatchupThreshold is the backlog (documents inserted since the drain
	// watermark) below which the compactor stops chasing and freezes to
	// finish the rest synchronously. 0 means 16.
	CatchupThreshold int
	// MaxRounds caps the chase: after this many drain rounds the compactor
	// freezes regardless of backlog, bounding pause time at roughly one
	// round's worth of inserts. 0 means 10.
	MaxRounds int
	// Throttle, when set, sleeps this long every throttleEvery drained or
	// replayed documents — the background rate limit.
	Throttle time.Duration
	// Busy, when set, reports foreground pressure; the compactor backs off
	// BusyBackoff instead of working (the scrubber's yield idiom).
	Busy        func() bool
	BusyBackoff time.Duration
	// Retain is the version-retention window (see Options.Retain).
	Retain uint64
}

// throttleEvery is how many documents pass between pacing checks.
const throttleEvery = 64

func (co *CompactOptions) withDefaults() CompactOptions {
	out := *co
	if out.CatchupThreshold <= 0 {
		out.CatchupThreshold = 16
	}
	if out.MaxRounds <= 0 {
		out.MaxRounds = 10
	}
	if out.BusyBackoff <= 0 {
		out.BusyBackoff = 100 * time.Millisecond
	}
	return out
}

// Compact rewrites the live index into a packed bulk-loaded epoch and swaps
// to it, without stopping queries and pausing inserts only for the final
// catch-up + swap window (Report.Pause). Phases:
//
//  1. drain — spool every document into sealed runs, checkpointed in the
//     manifest, rate-limited; queries and inserts proceed untouched.
//     Repeated until the insert backlog is below CatchupThreshold.
//  2. build — bulk-load the runs into .compact/next (kept open), also
//     rate-limited and restartable from scratch.
//  3. freeze — block new inserts, insert the last backlog directly into
//     the new index, flush it.
//  4. publish + commit — rename next/ to epoch-N, atomically write CURRENT.
//  5. swap — repoint the Root (draining in-flight queries), close the old
//     epoch, delete its files.
//
// Any failure before step 4's CURRENT write aborts with *Aborted: the old
// epoch keeps serving, untouched, and the work directory is preserved so
// the next attempt resumes from the last checkpoint. ctx cancellation is
// honored between documents during drain and build.
func (r *Root) Compact(ctx context.Context, co CompactOptions) (*Report, error) {
	if !r.compacting.CompareAndSwap(false, true) {
		return nil, ErrCompacting
	}
	defer r.compacting.Store(false)
	co = co.withDefaults()
	oo := Options{Dir: r.dir, MemBudget: co.MemBudget, BufferPoolPages: r.opts.BufferPoolPages, FS: r.fs, OpenFile: r.opts.OpenFile, HotBudget: r.opts.HotBudget, Retain: co.Retain}
	o := oo.withDefaults()
	fs := o.FS
	workdir := filepath.Join(r.dir, WorkDirName)
	start := time.Now()

	r.mu.RLock()
	old, srcEpoch := r.di, r.epoch
	r.mu.RUnlock()
	src := &source{dyn: old, ix: old.Index()}
	probe := manifestFor(src, srcEpoch, o)

	var paced int
	pace := func() error {
		paced++
		if paced%throttleEvery != 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for co.Busy != nil && co.Busy() {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(co.BusyBackoff):
			}
		}
		if co.Throttle > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(co.Throttle):
			}
		}
		return nil
	}

	// Reuse a previous in-process attempt's sealed runs when its manifest is
	// still in drain/build under identical configuration; otherwise start
	// clean, discarding any uncommitted next-epoch directory a failed publish
	// left behind (CURRENT never pointed at it).
	m, err := loadManifest(fs, workdir)
	if err != nil || m.Phase == phasePublish || m.Phase == phaseDone ||
		m.SourceEpoch != srcEpoch || m.matches(probe) != nil {
		if err := fs.RemoveAll(workdir); err != nil {
			return nil, &Aborted{Phase: phaseDrain, Err: err}
		}
		if err := fs.RemoveAll(filepath.Join(r.dir, EpochDirName(srcEpoch+1))); err != nil {
			return nil, &Aborted{Phase: phaseDrain, Err: err}
		}
		if err := fs.MkdirAll(workdir); err != nil {
			return nil, &Aborted{Phase: phaseDrain, Err: err}
		}
		m = probe
		if err := m.save(fs, workdir); err != nil {
			return nil, &Aborted{Phase: phaseDrain, Err: err}
		}
	}

	rep := &Report{Epoch: srcEpoch + 1, Dir: filepath.Join(r.dir, EpochDirName(srcEpoch+1)), Dynamic: true}
	rep.SourceDocs = old.NumDocs()

	// Phases 1–3 may restart when a versioned mutation (delete/update)
	// lands after a document was drained: the sealed runs and the pinned
	// map no longer describe the same history, so the spool is rebuilt
	// from scratch. Bounded — a source mutating faster than the drain can
	// restart aborts rather than looping forever.
	var next *prix.DynamicIndex
	var pauseStart time.Time
	var unfreeze func()
	const maxMutRestarts = 3
	for attempt := 0; ; attempt++ {
		// Phase 1: chase the live index. Each round drains up to the
		// snapshot taken at its start; inserts landing during the round
		// feed the next.
		for rounds := 0; ; rounds++ {
			docs, vm := src.snapshot()
			total := uint32(docs)
			muts := uint64(0)
			if vm != nil {
				muts = vm.MutOps
			}
			if muts != m.Muts && len(m.Runs) > 0 {
				// A mutation may have touched an already-drained document;
				// its run content (or reclaim status) is stale.
				m.Runs = nil
				m.Docs = 0
			}
			reclaimed := pinVersions(m, vm, o.Retain)
			m.Phase = phaseDrain
			if err := drain(fs, workdir, m, src, total, reclaimed, rep, pace); err != nil {
				return nil, &Aborted{Phase: phaseDrain, Err: err}
			}
			m.Docs = total
			if err := m.save(fs, workdir); err != nil {
				return nil, &Aborted{Phase: phaseDrain, Err: err}
			}
			if old.NumDocs()-int(total) <= co.CatchupThreshold || rounds+1 >= co.MaxRounds {
				break
			}
		}
		m.Phase = phaseBuild
		if err := m.save(fs, workdir); err != nil {
			return nil, &Aborted{Phase: phaseDrain, Err: err}
		}

		// Phase 2: bulk-load the runs. The new index stays open — its page
		// files live in .compact/next and follow the directory through the
		// publish rename, so the swap needs no reopen.
		built, _, err := build(fs, workdir, m, o, pace)
		if err != nil {
			return nil, &Aborted{Phase: phaseBuild, Err: err}
		}
		next = built.dyn

		// Phase 3: freeze. The swap gate goes pending first so a scrubber
		// pass cannot start mid-swap (and an in-flight one finishes before
		// the swap), without that wait inflating the insert pause.
		r.swapPending.Store(true)
		r.swapMu.Lock()
		pauseStart = time.Now()
		r.insertMu.Lock()
		unfreeze = func() {
			r.insertMu.Unlock()
			r.swapMu.Unlock()
			r.swapPending.Store(false)
		}
		if st := old.Index().VersionStats(); st.MutOps != m.Muts {
			// A delete/update slipped in after the last drain round. Only
			// inserts are allowed past the watermark (the catch-up below
			// replays them); restart the drain under the new history.
			unfreeze()
			next.Close()
			next = nil
			if attempt+1 >= maxMutRestarts {
				return nil, &Aborted{Phase: phaseDrain, Err: fmt.Errorf(
					"compact: source mutated during %d consecutive drain attempts", maxMutRestarts)}
			}
			continue
		}
		break
	}
	rep.Docs = m.Docs
	rep.Runs = len(m.Runs)
	rep.Reclaimed, rep.Tombstones = versionCounts(m.Versions)
	fail := func(phase string, err error) (*Report, error) {
		next.Close()
		return nil, &Aborted{Phase: phase, Err: err}
	}
	for id := m.Docs; id < uint32(old.NumDocs()); id++ {
		doc, err := old.Index().ReconstructDocument(id)
		if err != nil {
			unfreeze()
			return fail(phaseBuild, fmt.Errorf("compact: catch-up document %d: %w", id, err))
		}
		if err := next.Insert(doc); err != nil {
			unfreeze()
			return fail(phaseBuild, fmt.Errorf("compact: catch-up document %d: %w", id, err))
		}
		rep.DeltaDocs++
	}
	if err := next.Flush(); err != nil {
		unfreeze()
		return fail(phaseBuild, err)
	}

	// Phase 4: publish and commit. The CURRENT write is the point of no
	// return — before it, any failure leaves the old epoch serving.
	m.Phase = phasePublish
	m.DeltaDocs = uint32(rep.DeltaDocs)
	if err := m.save(fs, workdir); err != nil {
		unfreeze()
		return fail(phaseBuild, err)
	}
	if err := publishCommit(fs, r.dir, workdir, m); err != nil {
		if cur, lerr := loadCurrent(fs, r.dir); lerr == nil && cur.Epoch == m.NextEpoch {
			// The pointer write landed despite the reported failure: the
			// commit is durable, so fall through to the swap — aborting now
			// would resume inserts into an epoch that no longer owns the
			// root.
		} else {
			// Before inserts resume, the on-disk checkpoint must stop saying
			// phasePublish: recovery at that phase commits the pre-built
			// epoch as-is — correct this instant, but silently dropping
			// every insert acknowledged from here on. Demote it (recovery
			// then re-drains past the watermark) while the freeze still
			// holds the watermark fixed.
			if rbErr := rollbackPublish(fs, r.dir, workdir, m); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
			unfreeze()
			return fail(phasePublish, err)
		}
	}

	// Phase 5: swap. Taking mu drains in-flight queries off the old epoch;
	// new queries (and the unfrozen inserts) see the new one. The epoch bump
	// changes every cache key, so stale results cannot be served.
	r.mu.Lock()
	r.genBase += old.Generation() + 1
	r.di = next
	r.epoch = m.NextEpoch
	r.mu.Unlock()
	next.OnInsert(r.fireHooks)
	unfreeze()
	rep.Pause = time.Since(pauseStart)
	r.fireHooks()

	// Post-commit teardown. The new epoch is serving whatever happens here;
	// an error is reported but no longer aborts anything, and a leftover
	// work directory or old epoch is re-deleted by the next recovery.
	closeErr := old.Close()
	m.Phase = phaseDone
	if err := m.save(fs, workdir); err == nil {
		err = cleanup(fs, r.dir, workdir, m.SourceEpoch)
		if closeErr == nil {
			closeErr = err
		}
	} else if closeErr == nil {
		closeErr = err
	}
	rep.Elapsed = time.Since(start)
	if closeErr != nil {
		return rep, fmt.Errorf("compact: post-commit cleanup (epoch %d is serving): %w", m.NextEpoch, closeErr)
	}
	return rep, nil
}

// rollbackPublish undoes a failed publish before inserts resume. The epoch
// directory a partial publish may have renamed into place is removed first
// — otherwise the idempotent-publish probe would resurrect the stale build
// on recovery — then the checkpoint is demoted to phaseBuild so recovery
// re-drains anything inserted past the watermark. If the demotion cannot
// be written, the whole work directory is discarded instead: recovery then
// finds nothing to resume and the old epoch simply keeps serving. Only
// when every fallback fails is an error returned; execute's phasePublish
// watermark check is the last line of defense for that case.
func rollbackPublish(fs ingest.FS, root, workdir string, m *Manifest) error {
	if err := fs.RemoveAll(filepath.Join(root, EpochDirName(m.NextEpoch))); err == nil {
		m.Phase = phaseBuild
		m.DeltaDocs = 0
		if err := m.save(fs, workdir); err == nil {
			return nil
		}
	}
	if err := fs.RemoveAll(workdir); err != nil {
		return fmt.Errorf("compact: publish rollback failed (recovery must not trust the phase-publish checkpoint): %w", err)
	}
	return nil
}
