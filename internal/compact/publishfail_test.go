package compact

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/ingest"
	"repro/internal/prix"
	"repro/internal/xmltree"
)

// failFS fails write-class operations whose path matches a substring, n
// times (reads always pass through). With thenAll set, the moment the
// matched failure fires every further write-class operation fails too — a
// disk dying at the commit point.
type failFS struct {
	ingest.FS
	mu      sync.Mutex
	match   string
	n       int
	thenAll bool
	failAll bool
}

var errInjected = errors.New("injected write failure")

func (f *failFS) deny(path string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAll {
		return true
	}
	if f.n > 0 && strings.Contains(path, f.match) {
		f.n--
		if f.thenAll {
			f.failAll = true
		}
		return true
	}
	return false
}

func (f *failFS) Create(path string) (ingest.File, error) {
	if f.deny(path) {
		return nil, errInjected
	}
	return f.FS.Create(path)
}

func (f *failFS) Rename(oldPath, newPath string) error {
	if f.deny(newPath) {
		return errInjected
	}
	return f.FS.Rename(oldPath, newPath)
}

func (f *failFS) Remove(path string) error {
	if f.deny(path) {
		return errInjected
	}
	return f.FS.Remove(path)
}

func (f *failFS) RemoveAll(path string) error {
	if f.deny(path) {
		return errInjected
	}
	return f.FS.RemoveAll(path)
}

func (f *failFS) MkdirAll(path string) error {
	if f.deny(path) {
		return errInjected
	}
	return f.FS.MkdirAll(path)
}

// markerDoc is a recognizable post-failure insert.
func markerDoc(i int) *xmltree.Document {
	return xmltree.MustFromSExpr(i, `(marker (late))`)
}

// TestOnlinePublishFailureKeepsLaterInserts is the regression test for the
// aborted-publish data-loss hazard: an online compaction whose CURRENT
// write fails aborts cleanly, inserts acknowledged afterwards land in the
// (still serving) old epoch, and a crash + restart must recover a
// compacted index that contains those inserts — never the stale pre-built
// epoch the interrupted manifest pointed at.
func TestOnlinePublishFailureKeepsLaterInserts(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(30)
	buildDynamicDir(t, dir, docs)

	root, err := OpenRoot(dir, prix.Options{BufferPoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	root.fs = &failFS{FS: ingest.OSFS{}, match: CurrentFile, n: 1}

	_, err = root.Compact(context.Background(), CompactOptions{MemBudget: 32 << 10})
	var ab *Aborted
	if !errors.As(err, &ab) || ab.Phase != phasePublish {
		t.Fatalf("failed publish: err = %v, want *Aborted in publish phase", err)
	}
	if root.Epoch() != 0 {
		t.Fatalf("aborted publish moved the root to epoch %d", root.Epoch())
	}
	// The rollback must have demoted the on-disk checkpoint: a manifest
	// still claiming phasePublish is exactly the state recovery would
	// commit stale.
	if m, err := loadManifest(ingest.OSFS{}, filepath.Join(dir, WorkDirName)); err == nil && m.Phase == phasePublish {
		t.Fatal("publish failure left the manifest at phasePublish")
	}
	// The partially published epoch directory is gone.
	if _, err := os.Stat(filepath.Join(dir, EpochDirName(1))); !os.IsNotExist(err) {
		t.Fatal("publish failure left the uncommitted epoch directory behind")
	}

	// Inserts acknowledged after the abort land in the old epoch.
	const extra = 5
	for i := 0; i < extra; i++ {
		if err := root.Insert(markerDoc(len(docs) + i)); err != nil {
			t.Fatalf("insert after aborted publish: %v", err)
		}
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash + restart": reopen on a healthy filesystem. Recovery resumes
	// the demoted compaction — re-draining past the watermark — and every
	// acknowledged insert survives.
	root2, err := OpenRoot(dir, prix.Options{BufferPoolPages: 128})
	if err != nil {
		t.Fatalf("restart after aborted publish: %v", err)
	}
	defer root2.Close()
	if got := root2.NumDocs(); got != len(docs)+extra {
		t.Fatalf("restart lost inserts: %d docs, want %d", got, len(docs)+extra)
	}
	if got := querySig(t, root2, `//marker/late`); strings.Count(got, ";") != extra {
		t.Fatalf("post-abort inserts not all queryable after restart: %q", got)
	}
	if root2.Epoch() != 1 {
		t.Fatalf("recovery finished at epoch %d, want 1", root2.Epoch())
	}
}

// TestRecoveryRefusesStalePublishManifest drives the worst case: the
// publish fails AND the rollback itself cannot write (the disk dies at the
// commit point), so the manifest is stranded at phasePublish with a stale
// epoch directory on disk while inserts keep landing in the old epoch.
// Recovery must notice the source grew past the built watermark, discard
// the stale build, and re-drain — the defense-in-depth half of the fix.
func TestRecoveryRefusesStalePublishManifest(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(24)
	buildDynamicDir(t, dir, docs)

	root, err := OpenRoot(dir, prix.Options{BufferPoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	root.fs = &failFS{FS: ingest.OSFS{}, match: CurrentFile, n: 1, thenAll: true}

	_, err = root.Compact(context.Background(), CompactOptions{MemBudget: 32 << 10})
	var ab *Aborted
	if !errors.As(err, &ab) || ab.Phase != phasePublish {
		t.Fatalf("failed publish: err = %v, want *Aborted in publish phase", err)
	}
	// The stranded state this test is about: manifest still at
	// phasePublish, stale epoch directory present.
	m, merr := loadManifest(ingest.OSFS{}, filepath.Join(dir, WorkDirName))
	if merr != nil || m.Phase != phasePublish {
		t.Fatalf("test rig: expected a stranded phasePublish manifest, got %+v err %v", m, merr)
	}
	if _, err := os.Stat(filepath.Join(dir, EpochDirName(1))); err != nil {
		t.Fatalf("test rig: expected the stale epoch directory to survive: %v", err)
	}

	// Inserts land in the old epoch (page files bypass the injected FS).
	const extra = 4
	for i := 0; i < extra; i++ {
		if err := root.Insert(markerDoc(len(docs) + i)); err != nil {
			t.Fatalf("insert after stranded publish: %v", err)
		}
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on a healthy disk: recovery must NOT commit the stale epoch.
	root2, err := OpenRoot(dir, prix.Options{BufferPoolPages: 128})
	if err != nil {
		t.Fatalf("restart after stranded publish: %v", err)
	}
	defer root2.Close()
	if got := root2.NumDocs(); got != len(docs)+extra {
		t.Fatalf("recovery committed the stale epoch: %d docs, want %d", got, len(docs)+extra)
	}
	if got := querySig(t, root2, `//marker/late`); strings.Count(got, ";") != extra {
		t.Fatalf("post-failure inserts not all queryable after restart: %q", got)
	}
	if root2.Epoch() != 1 {
		t.Fatalf("recovery finished at epoch %d, want 1", root2.Epoch())
	}
}

// TestOnlinePublishFailureInProcessRetry: after a failed publish and its
// rollback, a second in-process Compact on the same Root completes, and
// documents inserted between the attempts are in the committed epoch.
func TestOnlinePublishFailureInProcessRetry(t *testing.T) {
	dir := t.TempDir()
	docs := corpus(20)
	buildDynamicDir(t, dir, docs)

	root, err := OpenRoot(dir, prix.Options{BufferPoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	root.fs = &failFS{FS: ingest.OSFS{}, match: CurrentFile, n: 1}

	if _, err := root.Compact(context.Background(), CompactOptions{MemBudget: 32 << 10}); err == nil {
		t.Fatal("first compaction unexpectedly survived the injected CURRENT failure")
	}
	const extra = 3
	for i := 0; i < extra; i++ {
		if err := root.Insert(markerDoc(len(docs) + i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := root.Compact(context.Background(), CompactOptions{MemBudget: 32 << 10})
	if err != nil {
		t.Fatalf("retry after failed publish: %v", err)
	}
	if rep.Epoch != 1 || root.Epoch() != 1 {
		t.Fatalf("retry committed epoch %d (root %d), want 1", rep.Epoch, root.Epoch())
	}
	if got := root.NumDocs(); got != len(docs)+extra {
		t.Fatalf("retry lost documents: %d, want %d", got, len(docs)+extra)
	}
	if got := querySig(t, root, `//marker/late`); strings.Count(got, ";") != extra {
		t.Fatalf("between-attempt inserts missing from the compacted epoch: %q", got)
	}
}
