package compact

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"repro/internal/ingest"
	"repro/internal/mvcc"
	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/shard"
)

// Options configures an offline compaction (and the drain/build halves of
// an online one).
type Options struct {
	// Dir is the index directory: an epoch root, or a plain index directory
	// that gets converted into one by its first compaction.
	Dir string
	// MemBudget bounds the bytes buffered before runs and spill chunks hit
	// disk; 0 means 32 MiB. It is pinned in the manifest: a resume under a
	// different budget is rejected rather than silently diverging.
	MemBudget int64
	// BufferPoolPages sizes the page pools of the source and the rebuilt
	// index (0 = default).
	BufferPoolPages int
	// FS carries every non-page write (runs, manifest, CURRENT, renames,
	// removals); nil means the OS. Crash-sweep tests inject FaultFS here.
	FS ingest.FS
	// OpenFile optionally intercepts page-file opens (fault injection for
	// the rebuilt index's pages); nil means plain OS files.
	OpenFile func(path string) (pager.File, error)
	// HotBudget enables the compressed in-memory hot tier on the source and
	// every rebuilt epoch (see prix.Options.HotBudget); 0 disables it.
	HotBudget int64
	// Retain is the version-retention window: tombstones (deleted
	// documents) younger than Counter-Retain keep their content in the new
	// epoch for AS OF reads; older ones are reclaimed — their records
	// become stubs and their postings are dropped. 0 reclaims every
	// tombstone. Update back-pointer history is always folded away by a
	// compaction (the superseded images live in the old epoch's pages).
	Retain uint64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemBudget <= 0 {
		out.MemBudget = 32 << 20
	}
	if out.FS == nil {
		out.FS = ingest.OSFS{}
	}
	return out
}

// Report summarizes one compaction.
type Report struct {
	// SourceDocs is the source's document count when the drain started.
	SourceDocs int `json:"source_docs"`
	// Docs is how many documents flowed through sealed drain runs.
	Docs uint32 `json:"docs"`
	// DeltaDocs is how many catch-up documents an online compaction
	// inserted into the new epoch during the freeze window.
	DeltaDocs int `json:"delta_docs,omitempty"`
	// Runs / RunBytes account the drain spool written by this invocation.
	Runs     int   `json:"runs"`
	RunBytes int64 `json:"run_bytes"`
	// Epoch / Dir identify the committed epoch.
	Epoch uint64 `json:"epoch"`
	Dir   string `json:"dir"`
	// Dynamic reports the build mode (insertable dynamic vs static bulk).
	Dynamic bool `json:"dynamic"`
	// Pause is the online freeze window (inserts blocked, swap performed).
	Pause time.Duration `json:"pause_ns,omitempty"`
	// Elapsed is the whole compaction's wall time.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Skipped reports that there was nothing to do (already compacted).
	Skipped bool `json:"skipped,omitempty"`
	// Reclaimed counts documents whose content the compaction dropped —
	// tombstones older than the retention watermark, rewritten as stubs.
	Reclaimed int `json:"reclaimed,omitempty"`
	// Tombstones counts deleted documents whose content the new epoch
	// retained for AS OF reads (tombstones inside the retention window).
	Tombstones int `json:"tombstones,omitempty"`
}

// Aborted is the typed failure of a compaction: the phase that failed and
// the cause. An aborted compaction never touches the serving epoch — the
// old layout keeps serving — and its work directory is preserved so a later
// Resume can pick up from the last checkpoint.
type Aborted struct {
	Phase string
	Err   error
}

func (a *Aborted) Error() string {
	return fmt.Sprintf("compact: aborted in %s phase (old epoch keeps serving): %v", a.Phase, a.Err)
}

func (a *Aborted) Unwrap() error { return a.Err }

func abortf(phase string, err error) error {
	var a *Aborted
	if errors.As(err, &a) {
		return err
	}
	return &Aborted{Phase: phase, Err: err}
}

// Run compacts the index at o.Dir from scratch, discarding any interrupted
// attempt's work directory first. The source must be offline (no concurrent
// writers); live indexes compact through Root.Compact instead.
func Run(o Options) (*Report, error) { return execute(o, false) }

// Resume continues an interrupted compaction from its manifest checkpoint:
// sealed drain runs are kept, the bulk build is redone from scratch (it is
// deterministic, so the result converges on the same bytes), and a
// compaction that had already published finishes its commit and cleanup.
// Returns ErrNoManifest when there is nothing to resume.
func Resume(o Options) (*Report, error) { return execute(o, true) }

// ResumeOrRun is the crash-recovery entry point: resume an interrupted
// compaction, report an already-completed one as Skipped, or start fresh if
// none was ever begun.
func ResumeOrRun(o Options) (*Report, error) {
	rep, err := Resume(o)
	if !errors.Is(err, ErrNoManifest) {
		return rep, err
	}
	od := o.withDefaults()
	if _, epoch, rerr := resolveDir(od.FS, od.Dir); rerr == nil && epoch > 0 {
		// No manifest but an epoch pointer: the previous compaction
		// committed and cleaned up. Nothing to recover.
		return &Report{Epoch: epoch, Dir: filepath.Join(od.Dir, EpochDirName(epoch)), Skipped: true}, nil
	}
	return Run(o)
}

// source is an open compaction source: always an inner *prix.Index, plus
// the dynamic wrapper when the index carries labeler replay state.
type source struct {
	dyn *prix.DynamicIndex
	ix  *prix.Index
}

func openSource(dir string, o Options) (*source, error) {
	popts := prix.Options{BufferPoolPages: o.BufferPoolPages, OpenFile: o.OpenFile, HotBudget: o.HotBudget}
	dyn, err := prix.OpenDynamic(dir, popts)
	if err == nil {
		return &source{dyn: dyn, ix: dyn.Index()}, nil
	}
	if !errors.Is(err, prix.ErrNotDynamic) {
		return nil, err
	}
	ix, err := prix.Open(dir, popts)
	if err != nil {
		return nil, err
	}
	return &source{ix: ix}, nil
}

func (s *source) close() error {
	if s.dyn != nil {
		return s.dyn.Close()
	}
	return s.ix.Close()
}

// snapshot atomically pairs the source's document count with a deep copy
// of its version map (nil when versioning is off), so the drain watermark
// and the pinned map describe the same instant even under live writers.
func (s *source) snapshot() (int, *mvcc.Map) {
	if s.dyn != nil {
		return s.dyn.VersionSnapshot()
	}
	return s.ix.NumDocs(), s.ix.CloneVersions()
}

// pinVersions collapses the snapshot under the retention window and pins
// the result (plus the mutation counter it was taken at) in the manifest.
// The returned set lists reclaimed documents — the drain spools stubs for
// them instead of content.
func pinVersions(m *Manifest, vm *mvcc.Map, retain uint64) map[uint32]bool {
	if vm == nil {
		m.Versions, m.Muts = nil, 0
		return nil
	}
	wm := uint64(0)
	if vm.Counter > retain {
		wm = vm.Counter - retain
	}
	collapsed, reclaimed, _ := vm.Collapse(wm)
	m.Versions = collapsed.Encode()
	m.Muts = vm.MutOps
	set := make(map[uint32]bool, len(reclaimed))
	for _, id := range reclaimed {
		set[id] = true
	}
	return set
}

// versionCounts derives the Report's reclaimed/tombstone tallies from the
// pinned map (safe on resume paths that never recomputed the pin).
func versionCounts(enc []byte) (reclaimed, tombstones int) {
	if len(enc) == 0 {
		return 0, 0
	}
	vm, err := mvcc.DecodeMap(enc)
	if err != nil {
		return 0, 0
	}
	for _, ivs := range vm.Docs {
		if len(ivs) == 0 {
			continue
		}
		last := ivs[len(ivs)-1]
		switch {
		case last.Marker():
			reclaimed++
		case last.To != 0:
			tombstones++
		}
	}
	return reclaimed, tombstones
}

// adoptVersions installs the manifest's pinned version map onto the freshly
// built epoch (tombstones are re-marked at the new terminals inside).
func adoptVersions(m *Manifest, ix *prix.Index) error {
	if len(m.Versions) == 0 {
		return nil
	}
	vm, err := mvcc.DecodeMap(m.Versions)
	if err != nil {
		return fmt.Errorf("compact: pinned version map: %w", err)
	}
	return ix.AdoptVersions(vm)
}

// docSeq re-derives one document's dictionary-free Prüfer transform: the
// stored record reconstructs to the original document (the PR 3 repair
// invariant), and Transform of that document is exactly what a scan worker
// would have produced — so drain runs replay through the same machinery as
// streaming ingest.
func (s *source) docSeq(id uint32) (*prix.DocSeq, error) {
	doc, err := s.ix.ReconstructDocument(id)
	if err != nil {
		return nil, fmt.Errorf("compact: drain document %d: %w", id, err)
	}
	return prix.Transform(id, doc, s.ix.Extended())
}

// manifestFor derives the checkpoint configuration from an open source.
func manifestFor(src *source, srcEpoch uint64, o Options) *Manifest {
	m := &Manifest{
		Version:     1,
		Phase:       phaseDrain,
		SourceEpoch: srcEpoch,
		NextEpoch:   srcEpoch + 1,
		Dynamic:     src.dyn != nil,
		Extended:    src.ix.Extended(),
		MemBudget:   o.MemBudget,
		Retain:      o.Retain,
	}
	if src.dyn != nil {
		m.Alpha = src.dyn.Alpha()
		m.Spread = src.dyn.Spread()
	}
	return m
}

// execute is the offline phase machine. Every phase transition is
// checkpointed in the CRC-sealed manifest; drain progress is checkpointed
// per sealed run; the build is redone from scratch on resume (deterministic
// output); publish is one directory rename; commit is one atomic CURRENT
// write — the single point where the new epoch becomes the serving one.
func execute(o Options, resume bool) (*Report, error) {
	explicitBudget := o.MemBudget > 0
	o = o.withDefaults()
	fs := o.FS
	root := o.Dir
	workdir := filepath.Join(root, WorkDirName)
	start := time.Now()

	_, srcEpoch, err := resolveDir(fs, root)
	if err != nil {
		return nil, abortf(phaseDrain, err)
	}
	srcDir := root
	if srcEpoch > 0 {
		srcDir = filepath.Join(root, EpochDirName(srcEpoch))
	}

	var m *Manifest
	if resume {
		if m, err = loadManifest(fs, workdir); err != nil {
			return nil, err
		}
		switch {
		case m.SourceEpoch == srcEpoch:
		case m.NextEpoch == srcEpoch && (m.Phase == phasePublish || m.Phase == phaseDone):
			// CURRENT already points at the manifest's target epoch: the
			// commit landed but the crash hit before the phase-done save or
			// mid-cleanup. The compaction is effectively done — fall through
			// to re-enter publish (idempotent) and finish the cleanup.
		default:
			return nil, abortf(m.Phase, fmt.Errorf("compact: manifest compacts epoch %d but %d is serving", m.SourceEpoch, srcEpoch))
		}
		if !explicitBudget {
			// Startup recovery (OpenRoot → Recover) does not know what
			// budget the interrupted compaction ran under; the manifest pins
			// it, so adopt it instead of rejecting the resume over a phantom
			// drift. An explicit caller-supplied budget is still checked.
			o.MemBudget = m.MemBudget
		}
		if o.Retain == 0 {
			// Same adoption for the retention window: it decides which
			// documents drain as stubs, so resuming under a different value
			// would silently change the spool's contents.
			o.Retain = m.Retain
		}
	} else {
		if err := fs.RemoveAll(workdir); err != nil {
			return nil, abortf(phaseDrain, err)
		}
		// An uncommitted next-epoch directory (a failed publish whose CURRENT
		// write never happened) is debris: CURRENT never pointed at it, and a
		// fresh run under different options would otherwise collide with it.
		if err := fs.RemoveAll(filepath.Join(root, EpochDirName(srcEpoch+1))); err != nil {
			return nil, abortf(phaseDrain, err)
		}
		if err := fs.MkdirAll(workdir); err != nil {
			return nil, abortf(phaseDrain, err)
		}
	}

	nextEpoch := srcEpoch + 1
	if m != nil {
		nextEpoch = m.NextEpoch
	}
	rep := &Report{Epoch: nextEpoch, Dir: filepath.Join(root, EpochDirName(nextEpoch))}

	// A phasePublish manifest whose commit never landed (CURRENT still
	// names the source epoch) may only republish the pre-built epoch if the
	// source gained nothing since the build: a failed online publish
	// unfreezes inserts, and every document acknowledged after that failure
	// exists solely in the source. Root.Compact demotes the checkpoint
	// before unfreezing, but that demotion is itself a write that can fail,
	// so verify the watermark here too and fall back to re-draining.
	if m != nil && m.Phase == phasePublish && m.SourceEpoch == srcEpoch {
		src, err := openSource(srcDir, o)
		if err != nil {
			return nil, abortf(phasePublish, err)
		}
		docs := uint32(src.ix.NumDocs())
		if err := src.close(); err != nil {
			return nil, abortf(phasePublish, err)
		}
		if docs > m.Docs+m.DeltaDocs {
			// The stale build must go: its epoch directory (if the publish
			// rename happened) would otherwise satisfy the idempotent-publish
			// probe and commit without the post-failure documents.
			if err := fs.RemoveAll(filepath.Join(root, EpochDirName(m.NextEpoch))); err != nil {
				return nil, abortf(phasePublish, err)
			}
			m.Phase = phaseBuild
			m.DeltaDocs = 0
			if err := m.save(fs, workdir); err != nil {
				return nil, abortf(phasePublish, err)
			}
		}
	}

	// Drain + build need the source; publish/done never reopen it, so a
	// resume after the swap point cannot be blocked by source damage.
	if m == nil || m.Phase == phaseDrain || m.Phase == phaseBuild {
		src, err := openSource(srcDir, o)
		if err != nil {
			return nil, abortf(phaseDrain, err)
		}
		if m == nil {
			m = manifestFor(src, srcEpoch, o)
			if err := m.save(fs, workdir); err != nil {
				src.close()
				return nil, abortf(phaseDrain, err)
			}
		} else if err := m.matches(manifestFor(src, srcEpoch, o)); err != nil {
			src.close()
			return nil, abortf(m.Phase, err)
		}
		rep.Dynamic = m.Dynamic
		docs, vm := src.snapshot()
		rep.SourceDocs = docs
		total := uint32(docs)
		muts := uint64(0)
		if vm != nil {
			muts = vm.MutOps
		}
		// Re-enter drain when documents landed past the watermark (an online
		// compaction interrupted between drain and publish): the build phase
		// restarts from scratch anyway, so extending the run spool is safe.
		// A drifted mutation counter invalidates every sealed run — a drained
		// document's content (or reclaim status) may have changed — so the
		// spool restarts from scratch under a freshly pinned map.
		if m.Phase == phaseDrain || total > m.Docs || muts != m.Muts {
			if muts != m.Muts {
				m.Runs = nil
				m.Docs = 0
			}
			reclaimed := pinVersions(m, vm, o.Retain)
			m.Phase = phaseDrain
			if err := drain(fs, workdir, m, src, total, reclaimed, rep, nil); err != nil {
				src.close()
				return nil, abortf(phaseDrain, err)
			}
			m.Docs = total
			m.Phase = phaseBuild
			if err := m.save(fs, workdir); err != nil {
				src.close()
				return nil, abortf(phaseDrain, err)
			}
		}
		if err := src.close(); err != nil {
			return nil, abortf(phaseBuild, err)
		}
		built, _, err := build(fs, workdir, m, o, nil)
		if err != nil {
			return nil, abortf(phaseBuild, err)
		}
		if err := built.close(); err != nil {
			return nil, abortf(phaseBuild, err)
		}
		m.Phase = phasePublish
		if err := m.save(fs, workdir); err != nil {
			return nil, abortf(phaseBuild, err)
		}
	} else {
		rep.Dynamic = m.Dynamic
		rep.SourceDocs = int(m.Docs)
	}
	rep.Docs = m.Docs
	rep.Runs = len(m.Runs)
	rep.Reclaimed, rep.Tombstones = versionCounts(m.Versions)

	if m.Phase == phasePublish {
		if err := publishCommit(fs, root, workdir, m); err != nil {
			return nil, abortf(phasePublish, err)
		}
		m.Phase = phaseDone
		if err := m.save(fs, workdir); err != nil {
			return nil, abortf(phasePublish, err)
		}
	}
	if err := cleanup(fs, root, workdir, m.SourceEpoch); err != nil {
		return nil, abortf(phaseDone, err)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// drain spools documents [watermark, total) of the source into sealed run
// files, checkpointing the manifest after every seal. Runs roll over at a
// quarter of the memory budget so the spool never needs more than one
// run's worth of buffered bytes.
func drain(fs ingest.FS, workdir string, m *Manifest, src *source, total uint32, reclaimed map[uint32]bool, rep *Report, pace func() error) error {
	drained := uint32(0)
	for _, r := range m.Runs {
		drained += r.Docs
	}
	if drained >= total {
		return nil
	}
	// Unsealed runs and stale build output are debris from a crash.
	if err := clearDebris(fs, workdir, m); err != nil {
		return err
	}
	runLimit := m.MemBudget / 4
	if runLimit < 8<<10 {
		runLimit = 8 << 10
	}
	var w *ingest.RunWriter
	var name string
	seal := func() error {
		crc, err := w.Seal()
		if err != nil {
			return err
		}
		m.Runs = append(m.Runs, RunInfo{Name: name, Docs: w.Docs(), CRC: crc})
		rep.Runs++
		rep.RunBytes += w.Bytes()
		w = nil
		return m.save(fs, workdir)
	}
	for id := drained; id < total; id++ {
		if pace != nil {
			if err := pace(); err != nil {
				if w != nil {
					w.Abort()
				}
				return err
			}
		}
		var ds *prix.DocSeq
		var err error
		if reclaimed[id] {
			// Past the retention watermark: the document's content is
			// dropped — the stub keeps the docid stable with no postings,
			// and the marker interval keeps it invisible at every version.
			ds = prix.ReclaimedDocSeq(id)
		} else if ds, err = src.docSeq(id); err != nil {
			if w != nil {
				w.Abort()
			}
			return err
		}
		if w == nil {
			name = fmt.Sprintf("run-%04d", len(m.Runs))
			if w, err = ingest.NewRunWriter(fs, filepath.Join(workdir, name)); err != nil {
				return err
			}
		}
		if err := w.Add(ds); err != nil {
			w.Abort()
			return err
		}
		if w.Bytes() >= runLimit {
			if err := seal(); err != nil {
				return err
			}
		}
	}
	if w != nil {
		return seal()
	}
	return nil
}

// built is the output of the build phase: exactly one of dyn/ix is set.
type built struct {
	dyn *prix.DynamicIndex
	ix  *prix.Index
}

func (b *built) close() error {
	if b.dyn != nil {
		return b.dyn.Close()
	}
	return b.ix.Close()
}

// build replays the sealed runs into a fresh bulk-loaded index under
// workdir/next. It always starts from scratch — next/ and spill/ are
// removed first — because the bulk load is deterministic: redoing it after
// a crash converges on byte-identical files, which is cheaper and simpler
// than checkpointing a half-built B+-tree. pace, when set, throttles the
// replay (the online compactor's rate limit).
func build(fs ingest.FS, workdir string, m *Manifest, o Options, pace func() error) (*built, uint32, error) {
	nextDir := filepath.Join(workdir, nextDirName)
	spillDir := filepath.Join(workdir, spillDirName)
	for _, dir := range []string{nextDir, spillDir} {
		if err := fs.RemoveAll(dir); err != nil {
			return nil, 0, err
		}
		if err := fs.MkdirAll(dir); err != nil {
			return nil, 0, err
		}
	}
	popts := prix.Options{
		Extended:        m.Extended,
		Dir:             nextDir,
		BufferPoolPages: o.BufferPoolPages,
		OpenFile:        o.OpenFile,
		// The new epoch is built in-process and stays open through the swap,
		// so its tier (summaries included) is populated during the rewrite.
		HotBudget: o.HotBudget,
	}
	bo := prix.BulkOptions{Spill: &fsSpiller{fs: fs, dir: spillDir}, MemBudget: m.MemBudget}
	replay := func(fn func(*prix.DocSeq) error) error {
		var next uint32
		for _, ri := range m.Runs {
			r, err := ingest.OpenRun(fs, filepath.Join(workdir, ri.Name))
			if err != nil {
				return err
			}
			for {
				ds, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					r.Close()
					return err
				}
				if ds.DocID != next {
					r.Close()
					return fmt.Errorf("compact: %s: docid %d out of order (want %d)", ri.Name, ds.DocID, next)
				}
				next++
				if pace != nil {
					if err := pace(); err != nil {
						r.Close()
						return err
					}
				}
				if err := fn(ds); err != nil {
					r.Close()
					return err
				}
			}
			if r.Docs() != ri.Docs || r.SealCRC() != ri.CRC {
				r.Close()
				return fmt.Errorf("compact: %s: run drifted from manifest (docs %d/%d, crc %08x/%08x)",
					ri.Name, r.Docs(), ri.Docs, r.SealCRC(), ri.CRC)
			}
			if err := r.Close(); err != nil {
				return err
			}
		}
		if next != m.Docs {
			return fmt.Errorf("compact: replayed %d docs, manifest watermark is %d", next, m.Docs)
		}
		return nil
	}
	if m.Dynamic {
		di, err := prix.BulkLoadDynamic(popts, prix.DynamicOptions{Alpha: m.Alpha, Spread: m.Spread}, bo, replay)
		if err != nil {
			return nil, 0, err
		}
		if err := adoptVersions(m, di.Index()); err != nil {
			di.Close()
			return nil, 0, err
		}
		if err := fs.RemoveAll(spillDir); err != nil {
			di.Close()
			return nil, 0, err
		}
		return &built{dyn: di}, m.Docs, nil
	}
	b, err := prix.NewBuilder(popts)
	if err != nil {
		return nil, 0, err
	}
	if err := replay(func(ds *prix.DocSeq) error { return b.AddSeq(ds) }); err != nil {
		b.Abort()
		return nil, 0, err
	}
	ix, err := b.FinalizeBulk(bo)
	if err != nil {
		return nil, 0, err
	}
	if err := adoptVersions(m, ix); err != nil {
		ix.Close()
		return nil, 0, err
	}
	if err := fs.RemoveAll(spillDir); err != nil {
		ix.Close()
		return nil, 0, err
	}
	return &built{ix: ix}, m.Docs, nil
}

// publishCommit renames the finished build into its epoch directory and
// atomically flips the CURRENT pointer to it. The rename is idempotent
// across a crash (an existing, complete epoch directory is kept — only a
// finished build is ever renamed, so presence implies completeness) and the
// pointer write is the commit point.
func publishCommit(fs ingest.FS, root, workdir string, m *Manifest) error {
	epochDir := filepath.Join(root, EpochDirName(m.NextEpoch))
	if probe, err := fs.Open(filepath.Join(epochDir, prix.ForestFileName)); err == nil {
		probe.Close()
	} else {
		// Only a finished build is ever renamed into place, so an epoch
		// directory without its forest file is debris (an interrupted
		// publish rollback's half-removed tree); clear it or the rename
		// fails with ENOTEMPTY forever.
		if err := fs.RemoveAll(epochDir); err != nil {
			return err
		}
		if err := fs.Rename(filepath.Join(workdir, nextDirName), epochDir); err != nil {
			return err
		}
	}
	cur := &current{Version: 1, Epoch: m.NextEpoch, Dir: EpochDirName(m.NextEpoch)}
	return cur.save(fs, root)
}

// cleanup removes the superseded layout (the previous epoch directory, or
// the plain page files of a just-converted root) and the work directory.
// It runs only after commit and is idempotent — a crash mid-cleanup resumes
// here and re-deletes whatever is left.
func cleanup(fs ingest.FS, root, workdir string, srcEpoch uint64) error {
	if srcEpoch > 0 {
		if err := fs.RemoveAll(filepath.Join(root, EpochDirName(srcEpoch))); err != nil {
			return err
		}
	} else {
		for _, name := range []string{
			prix.ForestFileName, prix.DocsFileName,
			prix.ForestJournalFileName, prix.DocsJournalFileName,
		} {
			if err := fs.Remove(filepath.Join(root, name)); err != nil && !isNotExist(err) {
				return err
			}
		}
	}
	return fs.RemoveAll(workdir)
}

// fsSpiller adapts the injectable FS to the bulk loader's Spiller.
type fsSpiller struct {
	fs  ingest.FS
	dir string
}

func (s *fsSpiller) Create(name string) (io.WriteCloser, error) {
	f, err := s.fs.Create(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	return &spillFile{f: f}, nil
}

func (s *fsSpiller) Open(name string) (io.ReadCloser, error) {
	return s.fs.Open(filepath.Join(s.dir, name))
}

func (s *fsSpiller) Remove(name string) error {
	return s.fs.Remove(filepath.Join(s.dir, name))
}

// spillFile adapts ingest.File (Writer+Sync+Close) to io.WriteCloser,
// syncing on close so a sealed chunk is durable before it is read back.
type spillFile struct{ f ingest.File }

func (s *spillFile) Write(p []byte) (int, error) { return s.f.Write(p) }

func (s *spillFile) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// RunSharded compacts every replica of every shard under a sharded layout
// root, each into its own epoch-root conversion. Replica directories are
// self-contained indexes, so per-shard compaction is N×R independent
// offline compactions; a failure reports the replica it happened in and
// leaves that replica's old layout serving.
func RunSharded(root string, o Options) ([]*Report, error) {
	return eachReplica(root, o, Run)
}

// ResumeSharded finishes whatever each replica was doing: resumes
// interrupted compactions, skips completed ones, starts missing ones.
func ResumeSharded(root string, o Options) ([]*Report, error) {
	return eachReplica(root, o, ResumeOrRun)
}

func eachReplica(root string, o Options, run func(Options) (*Report, error)) ([]*Report, error) {
	topo, err := shard.LoadTopology(root)
	if err != nil {
		return nil, err
	}
	var reps []*Report
	for s := 0; s < topo.Shards; s++ {
		for r := 0; r < topo.Replicas; r++ {
			so := o
			so.Dir = shard.ReplicaDir(root, s, r)
			rep, err := run(so)
			if err != nil {
				return reps, fmt.Errorf("compact: %s replica %d: %w", shard.Name(s), r, err)
			}
			reps = append(reps, rep)
		}
	}
	return reps, nil
}
