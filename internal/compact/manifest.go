// Package compact rewrites append-heavy dynamic indexes into the packed
// bulk-loaded layout — online (a rate-limited background compactor over a
// live serving Root, with a zero-downtime epoch swap) or offline (the
// prixscrub -compact path over a closed index directory).
//
// Durability follows the streaming-ingest idiom: every intermediate
// artifact is either sealed-and-checksummed (run files), written atomically
// (manifest, CURRENT pointer), or rebuilt deterministically from scratch
// (the bulk-loaded index itself), so a power cut at any write ordinal
// resumes to a byte-identical compacted index — or, before the commit
// point, leaves the old epoch serving untouched. The commit point is a
// single atomic write of the CURRENT pointer file; there is no state in
// which readers can observe half a swap.
package compact

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ingest"
)

// Layout of an epoch root directory:
//
//	CURRENT             CRC-sealed pointer to the serving epoch directory
//	epoch-000001/       a complete index (seq.idx, docs.db, transient *.jnl)
//	.compact/           compaction work directory (manifest, runs, next/)
//
// A plain index directory (seq.idx directly at the root, no CURRENT) is
// auto-converted on its first compaction: the compacted index lands in
// epoch-000001/, CURRENT is committed, and the plain page files are removed.
const (
	// CurrentFile is the epoch pointer at the root of an epoch layout.
	CurrentFile = "CURRENT"
	// WorkDirName is the compaction work directory under the root.
	WorkDirName = ".compact"
	// ManifestFile is the checkpoint manifest inside the work directory.
	ManifestFile = "manifest.json"
	// nextDirName holds the index being built, renamed to epoch-N on publish.
	nextDirName = "next"
	// spillDirName holds the bulk loader's sorted spill chunks.
	spillDirName = "spill"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EpochDirName renders an epoch's directory name ("epoch-000001").
func EpochDirName(epoch uint64) string { return fmt.Sprintf("epoch-%06d", epoch) }

// current is the CURRENT pointer payload.
type current struct {
	Version int    `json:"version"`
	Epoch   uint64 `json:"epoch"`
	Dir     string `json:"dir"`
	// Checksum is CRC-32C over the JSON with this field zeroed.
	Checksum uint32 `json:"checksum"`
}

func (c *current) bytes() ([]byte, error) {
	shadow := *c
	shadow.Checksum = 0
	return json.MarshalIndent(&shadow, "", "  ")
}

func (c *current) save(fs ingest.FS, root string) error {
	raw, err := c.bytes()
	if err != nil {
		return err
	}
	c.Checksum = crc32.Checksum(raw, castagnoli)
	sealed, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return ingest.WriteFileAtomic(fs, filepath.Join(root, CurrentFile), append(sealed, '\n'))
}

func loadCurrent(fs ingest.FS, root string) (*current, error) {
	rc, err := fs.Open(filepath.Join(root, CurrentFile))
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	c := &current{}
	if err := json.Unmarshal(raw, c); err != nil {
		return nil, fmt.Errorf("compact: %s: %w", CurrentFile, err)
	}
	want := c.Checksum
	unsealed, err := c.bytes()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(unsealed, castagnoli); got != want {
		return nil, fmt.Errorf("compact: %s: checksum mismatch (stored %08x, computed %08x)", CurrentFile, want, got)
	}
	if c.Version != 1 {
		return nil, fmt.Errorf("compact: %s: unsupported version %d", CurrentFile, c.Version)
	}
	return c, nil
}

// ResolveDir resolves an index directory through its epoch pointer: an
// epoch root yields the serving epoch's directory, a plain index directory
// (no CURRENT) yields itself. Every opener — prixserve, prixscrub, the
// shard coordinator's replica loop — routes through this, which is what
// makes a compacted layout a drop-in replacement for a plain one. A CURRENT
// that exists but fails its checksum is an error, not a fallback: the plain
// files it superseded may already be gone.
func ResolveDir(dir string) (string, error) {
	resolved, _, err := resolveDir(ingest.OSFS{}, dir)
	return resolved, err
}

// resolveDir is ResolveDir plus the epoch number (0 for a plain directory),
// over an injectable filesystem.
func resolveDir(fs ingest.FS, dir string) (string, uint64, error) {
	c, err := loadCurrent(fs, dir)
	if err != nil {
		if isNotExist(err) {
			return dir, 0, nil
		}
		return "", 0, err
	}
	return filepath.Join(dir, c.Dir), c.Epoch, nil
}

func isNotExist(err error) bool { return errors.Is(err, os.ErrNotExist) }

// RunInfo records one sealed drain run in the manifest.
type RunInfo struct {
	// Name is the run's file name inside the work directory.
	Name string `json:"name"`
	// Docs is the number of DocSeq records the run carries.
	Docs uint32 `json:"docs"`
	// CRC is the run's sealed trailer CRC; replay cross-checks it.
	CRC uint32 `json:"crc"`
}

// Compaction phases, in order. drain and build may be revisited (a resumed
// online compaction re-drains documents inserted after the manifest's Docs
// watermark and rebuilds from scratch); publish and done are monotonic.
const (
	phaseDrain   = "drain"
	phaseBuild   = "build"
	phasePublish = "publish"
	phaseDone    = "done"
)

// Manifest is the compaction checkpoint: which phase was reached, the
// sealed runs drained so far, and the configuration that must not drift
// across a resume. It is CRC-sealed and written atomically, so a crash
// leaves either the previous checkpoint or the new one.
type Manifest struct {
	Version int    `json:"version"`
	Phase   string `json:"phase"`
	// SourceEpoch is the epoch being compacted (0 = plain directory);
	// NextEpoch = SourceEpoch + 1 is where the compacted index lands.
	SourceEpoch uint64 `json:"source_epoch"`
	NextEpoch   uint64 `json:"next_epoch"`
	// Dynamic selects the build mode: a dynamic source is rebuilt through
	// BulkLoadDynamic (still insertable afterwards), a static one through
	// FinalizeBulk.
	Dynamic  bool `json:"dynamic"`
	Extended bool `json:"extended"`
	// Alpha / Spread are the dynamic labeler parameters carried into the
	// compacted index.
	Alpha  int    `json:"alpha"`
	Spread uint64 `json:"spread"`
	// MemBudget pins the spill budget: it decides run and chunk boundaries,
	// so resuming under a different budget would break byte-identity.
	MemBudget int64 `json:"mem_budget"`
	// Docs is the drain watermark: documents [0, Docs) are covered by Runs.
	Docs uint32 `json:"docs"`
	// DeltaDocs is how many catch-up documents an online compaction
	// inserted directly into the built index during its freeze window
	// (set just before the phase moves to publish). Docs+DeltaDocs is the
	// built epoch's true watermark: a resume at phasePublish that finds
	// the source grown past it knows inserts were acknowledged after a
	// failed publish and must re-drain instead of committing the stale
	// build.
	DeltaDocs uint32 `json:"delta_docs,omitempty"`
	// Retain is the version-retention window the drain collapsed under; it
	// decides which documents spool as stubs, so a resume adopts it like
	// MemBudget.
	Retain uint64 `json:"retain,omitempty"`
	// Muts pins the source's mutation counter (MutOps) at the last drain
	// snapshot: runs drained under a different mutation history are stale
	// and force a full re-drain.
	Muts uint64 `json:"muts,omitempty"`
	// Versions is the collapsed version map captured with the drain
	// snapshot; the built epoch adopts it wholesale. Empty when the source
	// carries no version state.
	Versions []byte `json:"versions,omitempty"`
	// Runs lists the sealed drain runs in replay order.
	Runs []RunInfo `json:"runs"`
	// Checksum is CRC-32C over the JSON with this field zeroed.
	Checksum uint32 `json:"checksum"`
}

// ErrNoManifest reports that the work directory holds no (valid) manifest —
// nothing to resume.
var ErrNoManifest = errors.New("compact: no manifest to resume")

func (m *Manifest) bytes() ([]byte, error) {
	shadow := *m
	shadow.Checksum = 0
	return json.MarshalIndent(&shadow, "", "  ")
}

// save seals and atomically replaces the manifest checkpoint.
func (m *Manifest) save(fs ingest.FS, workdir string) error {
	raw, err := m.bytes()
	if err != nil {
		return err
	}
	m.Checksum = crc32.Checksum(raw, castagnoli)
	sealed, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return ingest.WriteFileAtomic(fs, filepath.Join(workdir, ManifestFile), append(sealed, '\n'))
}

func loadManifest(fs ingest.FS, workdir string) (*Manifest, error) {
	rc, err := fs.Open(filepath.Join(workdir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("%w (%v)", ErrNoManifest, err)
	}
	raw, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, fmt.Errorf("compact: %s: %w", ManifestFile, err)
	}
	want := m.Checksum
	unsealed, err := m.bytes()
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(unsealed, castagnoli); got != want {
		return nil, fmt.Errorf("compact: %s: checksum mismatch (stored %08x, computed %08x)", ManifestFile, want, got)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("compact: %s: unsupported version %d", ManifestFile, m.Version)
	}
	return m, nil
}

// matches rejects resuming under drifted configuration: the budget decides
// run/chunk boundaries and the epochs decide where files land, so any drift
// would silently break the byte-identity guarantee instead of failing here.
func (m *Manifest) matches(other *Manifest) error {
	switch {
	case m.SourceEpoch != other.SourceEpoch || m.NextEpoch != other.NextEpoch:
		return fmt.Errorf("compact: resume epoch mismatch (manifest %d→%d, current %d→%d)",
			m.SourceEpoch, m.NextEpoch, other.SourceEpoch, other.NextEpoch)
	case m.Dynamic != other.Dynamic:
		return fmt.Errorf("compact: resume build-mode mismatch (manifest dynamic=%v, source dynamic=%v)", m.Dynamic, other.Dynamic)
	case m.Extended != other.Extended:
		return fmt.Errorf("compact: resume sequence-flavor mismatch (manifest extended=%v, source extended=%v)", m.Extended, other.Extended)
	case m.Alpha != other.Alpha || m.Spread != other.Spread:
		return fmt.Errorf("compact: resume labeler mismatch (manifest α=%d spread=%d, source α=%d spread=%d)",
			m.Alpha, m.Spread, other.Alpha, other.Spread)
	case m.MemBudget != other.MemBudget:
		return fmt.Errorf("compact: resume budget mismatch (manifest %d, current %d)", m.MemBudget, other.MemBudget)
	case m.Retain != other.Retain:
		return fmt.Errorf("compact: resume retention mismatch (manifest %d, current %d)", m.Retain, other.Retain)
	}
	return nil
}

// clearDebris removes everything in the work directory that is not the
// manifest or a sealed, manifest-listed run: unsealed .tmp runs, and stale
// next/ or spill/ trees from an interrupted build (the build phase recreates
// both from scratch).
func clearDebris(fs ingest.FS, workdir string, m *Manifest) error {
	keep := map[string]bool{ManifestFile: true}
	for _, r := range m.Runs {
		keep[r.Name] = true
	}
	names, err := fs.ReadDir(workdir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if keep[name] {
			continue
		}
		if err := fs.RemoveAll(filepath.Join(workdir, name)); err != nil {
			return err
		}
	}
	return nil
}
