package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/compact"
	"repro/internal/prix"
	"repro/internal/xmltree"
)

// buildCompactRoot makes an on-disk dynamic index and opens it as a
// compaction root, the way prixserve serves an insertable directory.
func buildCompactRoot(t *testing.T, n int) *compact.Root {
	t.Helper()
	dir := t.TempDir()
	var docs []*xmltree.Document
	for i := 0; i < n; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(a (b (c)) (d (e)))`))
	}
	seed := docs[:4]
	di, err := prix.NewDynamicIndex(seed, prix.Options{Dir: dir}, prix.DynamicOptions{Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[4:] {
		if err := di.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := di.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	root, err := compact.OpenRoot(dir, prix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	return root
}

func TestCompactEndpointWithoutCompactor(t *testing.T) {
	ix := buildIndex(t, 2)
	defer ix.Close()
	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /compact without compactor = %d, want 503", resp.StatusCode)
	}
}

// TestCompactEndpointSwapsEpoch is the operator-facing half of the online
// compaction story: POST /compact rewrites the serving index, the epoch
// gauge bumps everywhere, and queries answer identically before and after.
func TestCompactEndpointSwapsEpoch(t *testing.T) {
	root := buildCompactRoot(t, 12)
	srv := New(root, Config{CacheCapacity: 64})
	srv.SetCompactor(compact.New(root, compact.Config{MemBudget: 32 << 10}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, before, _ := doQuery(t, ts.Client(), ts.URL, `//a/b`)
	if status != http.StatusOK {
		t.Fatalf("pre-compaction query = %d", status)
	}

	resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep compact.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Epoch != 1 || rep.Docs != 12 {
		t.Fatalf("POST /compact = %d %+v, want 200 at epoch 1 with 12 docs", resp.StatusCode, rep)
	}
	if root.Epoch() != 1 {
		t.Fatalf("root epoch = %d after the endpoint swap", root.Epoch())
	}

	status, after, _ := doQuery(t, ts.Client(), ts.URL, `//a/b`)
	if status != http.StatusOK {
		t.Fatalf("post-compaction query = %d", status)
	}
	if len(after.Matches) != len(before.Matches) {
		t.Fatalf("compaction changed the answer: %d vs %d matches", len(after.Matches), len(before.Matches))
	}

	// The gauges follow: /stats carries the compaction block, /metrics the
	// epoch and run counters.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Compaction *compact.Stats `json:"compaction"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Compaction == nil || stats.Compaction.Runs != 1 || stats.Compaction.Epoch != 1 {
		t.Fatalf("/stats compaction block = %+v, want 1 run at epoch 1", stats.Compaction)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<16)
	n, _ := mresp.Body.Read(raw)
	mresp.Body.Close()
	metrics := string(raw[:n])
	for _, want := range []string{"prix_compaction_epoch 1", "prix_compactions_total 1"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestCompactEndpointConflict: a second trigger while one compaction is in
// flight answers 409 instead of queueing or corrupting anything.
func TestCompactEndpointConflict(t *testing.T) {
	// The compactor's pacer observes the Busy hook every 64 documents, so
	// the corpus must be comfortably past that for the first request to
	// park rather than finish before the second one arrives.
	root := buildCompactRoot(t, 160)
	srv := New(root, Config{})
	release := make(chan struct{})
	srv.SetCompactor(compact.New(root, compact.Config{
		MemBudget:   32 << 10,
		BusyBackoff: time.Millisecond,
		Busy: func() bool {
			select {
			case <-release:
				return false
			default:
				return true
			}
		},
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
		if err != nil {
			first <- 0
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !root.Compacting() {
		if time.Now().After(deadline) {
			t.Fatal("first compaction never parked on the busy hook")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent POST /compact = %d, want 409", resp.StatusCode)
	}
	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("parked POST /compact = %d, want 200", got)
	}
	if root.Epoch() != 1 {
		t.Fatalf("root epoch = %d after the released compaction", root.Epoch())
	}
}
