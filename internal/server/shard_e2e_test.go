package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/scrub"
	"repro/internal/shard"
	"repro/internal/xmltree"
)

// shardCorpus spreads twig-rich documents across the docid space so every
// shard of a small layout owns several matching documents.
func shardCorpus(n int) []*xmltree.Document {
	var docs []*xmltree.Document
	for i := 0; i < n; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(a (b (c)) (d (e)))`))
	}
	docs = append(docs, xmltree.MustFromSExpr(n, `(a (b (c)) (x))`))
	docs = append(docs, xmltree.MustFromSExpr(n+1, `(r (a (d (e))))`))
	return docs
}

// buildShardedServer lays out a sharded index on disk, opens its
// coordinator and wires the full service over it: one scrubber per shard
// replica, exactly as cmd/prixserve does.
func buildShardedServer(t *testing.T, shards, replicas int) (*Server, *shard.Coordinator) {
	t.Helper()
	docs := shardCorpus(60)
	root := t.TempDir()
	if _, err := shard.Build(root, docs, shard.BuildConfig{Shards: shards, Replicas: replicas, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	co, err := shard.Open(root, prix.Options{}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	srv := New(co, Config{})
	var scrubbers []*scrub.Scrubber
	for _, ix := range co.Indexes() {
		scrubbers = append(scrubbers, scrub.New(ix, scrub.Config{Throttle: -1}))
	}
	srv.SetScrubbers(scrubbers)
	return srv, co
}

// corruptShardRecordPage flips a bit in the first record page of one
// opened index and drops its pools so the next read sees the damage.
func corruptShardRecordPage(t *testing.T, ix *prix.Index) {
	t.Helper()
	f := ix.Store().BufferPool().File()
	for id := uint32(0); id < f.NumPages(); id++ {
		if len(ix.Store().DocsOnPage(pager.PageID(id))) > 0 {
			if err := pager.FlipBit(f, pager.PageID(id), (pager.PageHeaderSize+7)*8); err != nil {
				t.Fatal(err)
			}
			if err := ix.ResetIOStats(); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("no record pages to corrupt")
}

// TestShardServerE2E is the sharded self-healing loop over HTTP: a healthy
// scatter-gather query, then a corrupt page quarantines documents on one
// shard — the service answers with a partial Degraded response whose
// X-Prix-Degraded header names that shard (not an error) — then POST
// /repair heals the shard online and the same query comes back whole.
func TestShardServerE2E(t *testing.T) {
	srv, co := buildShardedServer(t, 3, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, qr, _ := doQuery(t, ts.Client(), ts.URL, `{"query": "//a/b"}`)
	if status != http.StatusOK || qr.Degraded {
		t.Fatalf("baseline: status %d degraded=%v", status, qr.Degraded)
	}
	full := qr.Count
	if full == 0 {
		t.Fatal("baseline query matched nothing")
	}

	const victim = 1
	corruptShardRecordPage(t, co.Indexes()[victim])
	srv.Executor().InvalidateCache()

	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query": "//a/b"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d body %s (must be a partial answer, not an error)", resp.StatusCode, raw)
	}
	wantName := shard.Name(victim)
	if got := resp.Header.Get("X-Prix-Degraded"); got != wantName {
		t.Fatalf("X-Prix-Degraded = %q, want %q; body %s", got, wantName, raw)
	}
	var degraded QueryResponse
	if err := json.Unmarshal(raw, &degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded || degraded.Count >= full {
		t.Fatalf("degraded response: degraded=%v count=%d (full %d)", degraded.Degraded, degraded.Count, full)
	}
	if len(degraded.DegradedShards) != 1 || degraded.DegradedShards[0] != wantName {
		t.Fatalf("degraded_shards = %v, want [%s]", degraded.DegradedShards, wantName)
	}

	// /healthz stays 200 (degrade, don't fail) and names the shard.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status         string   `json:"status"`
		Shards         int      `json:"shards"`
		DegradedShards []string `json:"degraded_shards"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || health.Status != "degraded" || health.Shards != 3 {
		t.Fatalf("degraded healthz: status %d %+v", hz.StatusCode, health)
	}
	if len(health.DegradedShards) != 1 || health.DegradedShards[0] != wantName {
		t.Fatalf("healthz degraded_shards = %v, want [%s]", health.DegradedShards, wantName)
	}
	if got := hz.Header.Get("X-Prix-Degraded"); got != wantName {
		t.Fatalf("healthz X-Prix-Degraded = %q, want %q", got, wantName)
	}

	// /stats aggregates across shards and names the degraded one.
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(st.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if snap.NumShards != 3 || len(snap.Shards) != 3 {
		t.Fatalf("stats: num_shards=%d shards=%d, want 3/3", snap.NumShards, len(snap.Shards))
	}
	if snap.Docs != co.NumDocs() {
		t.Fatalf("stats docs = %d, want %d (summed over shards)", snap.Docs, co.NumDocs())
	}
	var sumDocs int
	var sumQueries uint64
	for _, s := range snap.Shards {
		sumDocs += s.Docs
		sumQueries += s.Queries
	}
	if sumDocs != co.NumDocs() {
		t.Fatalf("per-shard docs sum to %d, want %d", sumDocs, co.NumDocs())
	}
	if sumQueries == 0 {
		t.Fatal("per-shard query counters all zero after serving queries")
	}
	if len(snap.DegradedShards) != 1 || snap.DegradedShards[0] != wantName {
		t.Fatalf("stats degraded_shards = %v, want [%s]", snap.DegradedShards, wantName)
	}
	if snap.Quarantined == 0 {
		t.Fatal("stats quarantined_docs = 0 after corruption")
	}

	// Online repair across every shard replica, then the full answer again.
	rr, err := ts.Client().Post(ts.URL+"/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	rraw, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("POST /repair = %d: %s", rr.StatusCode, rraw)
	}
	var repair struct {
		Indexes []struct {
			Report scrub.Report `json:"report"`
			Error  string       `json:"error"`
		} `json:"indexes"`
	}
	if err := json.Unmarshal(rraw, &repair); err != nil {
		t.Fatal(err)
	}
	if len(repair.Indexes) != 3 {
		t.Fatalf("repair covered %d indexes, want 3: %s", len(repair.Indexes), rraw)
	}
	repaired := 0
	for _, entry := range repair.Indexes {
		repaired += len(entry.Report.Repairs)
	}
	if repaired == 0 {
		t.Fatalf("no repairs performed: %s", rraw)
	}

	status, qr, _ = doQuery(t, ts.Client(), ts.URL, `{"query": "//a/b"}`)
	if status != http.StatusOK || qr.Degraded || qr.Count != full {
		t.Fatalf("post-repair: status %d degraded=%v count=%d, want 200/false/%d",
			status, qr.Degraded, qr.Count, full)
	}
	hz2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz2.Body)
	hz2.Body.Close()
	if hz2.Header.Get("X-Prix-Degraded") != "" {
		t.Fatal("healthz still degraded after repair")
	}
}

// TestShardedServerMatchesSingleIndex: the HTTP service returns identical
// responses over a sharded coordinator and over one index built from the
// same documents.
func TestShardedServerMatchesSingleIndex(t *testing.T) {
	docs := shardCorpus(40)
	single, err := prix.Build(docs, prix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := shard.BuildMemory(docs, shard.BuildConfig{Shards: 4, Epoch: 1}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	ssingle := httptest.NewServer(New(single, Config{}).Handler())
	defer ssingle.Close()
	ssharded := httptest.NewServer(New(co, Config{}).Handler())
	defer ssharded.Close()
	for _, q := range []string{`//a/b`, `//a[./b/c]/d`, `//a//d/e`, `//r`, `//a`} {
		body := `{"query": "` + q + `"}`
		_, want, _ := doQuery(t, ssingle.Client(), ssingle.URL, body)
		_, got, _ := doQuery(t, ssharded.Client(), ssharded.URL, body)
		if got.Count != want.Count {
			t.Errorf("%s: sharded count %d, single %d", q, got.Count, want.Count)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("%s: sharded returned %d matches, single %d", q, len(got.Matches), len(want.Matches))
		}
		for i := range got.Matches {
			g, w := got.Matches[i], want.Matches[i]
			if g.Doc != w.Doc || g.Root != w.Root {
				t.Errorf("%s match %d: sharded %+v, single %+v", q, i, g, w)
			}
		}
	}
}

// TestTopologyEpochInCacheKey: a sharded source's placement epoch is part
// of every result-cache key, and distinct epochs produce distinct keys —
// so cached entries can never leak across reshards. A plain index has no
// epoch component at all.
func TestTopologyEpochInCacheKey(t *testing.T) {
	docs := shardCorpus(10)
	co1, err := shard.BuildMemory(docs, shard.BuildConfig{Shards: 2, Epoch: 1}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co1.Close()
	co2, err := shard.BuildMemory(docs, shard.BuildConfig{Shards: 2, Epoch: 2}, shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	e1 := NewExecutor(co1, 16, 1, nil)
	e2 := NewExecutor(co2, 16, 1, nil)
	if e1.epochs == nil || e2.epochs == nil {
		t.Fatal("sharded executors missing epoch source")
	}
	if e1.epochs.TopologyEpoch() == e2.epochs.TopologyEpoch() {
		t.Fatalf("different epochs share cache key component %d", e1.epochs.TopologyEpoch())
	}
	plain := NewExecutor(buildIndex(t, 3), 16, 1, nil)
	if plain.epochs != nil {
		t.Fatal("single index carries an epoch source")
	}
}
