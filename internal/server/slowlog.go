package server

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// SlowEntry is one logged query in the slow-query ring buffer, shaped for
// JSON at GET /debug/slowlog. The trace tree is included when the server
// traced the request, so a slow query can be diagnosed stage by stage after
// the fact without reproducing it.
type SlowEntry struct {
	Time        string        `json:"time"`
	Query       string        `json:"query"`
	Unordered   bool          `json:"unordered,omitempty"`
	Parallelism int           `json:"parallelism,omitempty"`
	ElapsedUS   int64         `json:"elapsed_us"`
	Count       int           `json:"count"`
	Candidates  int           `json:"candidates"`
	PagesRead   uint64        `json:"pages_read"`
	Degraded    bool          `json:"degraded,omitempty"`
	Trace       *obs.SpanJSON `json:"trace,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent slow queries.
// Writers take a short mutex (the slow path is by definition not latency
// critical); readers copy the ring under the same mutex, newest first.
type SlowLog struct {
	threshold time.Duration // queries at or above this are logged

	mu    sync.Mutex
	buf   []SlowEntry
	next  int    // ring write cursor
	total uint64 // entries ever logged (exceeds len(buf) after wrap)
}

// NewSlowLog sizes the ring. capacity <= 0 returns a nil log (disabled:
// every method no-ops); threshold <= 0 logs every query.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowEntry, 0, capacity)}
}

// Threshold returns the logging threshold (0 on a disabled log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Observe logs the entry if the elapsed time reaches the threshold.
func (l *SlowLog) Observe(elapsed time.Duration, e SlowEntry) {
	if l == nil || elapsed < l.threshold {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
}

// Snapshot returns the logged entries, newest first, plus the total number
// ever logged (so callers can tell how much the ring has dropped).
func (l *SlowLog) Snapshot() ([]SlowEntry, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.buf))
	// The newest entry sits just behind the cursor; walk backwards.
	for i := 0; i < len(l.buf); i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out, l.total
}
