package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStageHistogramsInMetrics: after serving queries, /metrics must expose
// per-stage latency histograms labeled by stage name.
func TestStageHistogramsInMetrics(t *testing.T) {
	ix := buildIndex(t, 50)
	srv := New(ix, Config{CacheCapacity: -1}) // no cache: every query executes
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range []string{`//a[./b/c]/d`, `//a//d/e`, `//a`} {
		if code, _, raw := doQuery(t, ts.Client(), ts.URL, q); code != http.StatusOK {
			t.Fatalf("query %s: %d %s", q, code, raw)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, w := range []string{
		`# TYPE prix_stage_latency_seconds histogram`,
		`prix_stage_latency_seconds_bucket{stage="descent",le="+Inf"}`,
		`prix_stage_latency_seconds_bucket{stage="fetch",le="+Inf"}`,
		`prix_stage_latency_seconds_count{stage="compile"}`,
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
	}
}

// TestQueryTraceParam: ?trace=1 returns a span tree for executed queries
// and no tree for cache hits (which executed nothing).
func TestQueryTraceParam(t *testing.T) {
	ix := buildIndex(t, 50)
	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(url, body string) (QueryResponse, string) {
		resp, err := ts.Client().Post(url, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", url, resp.StatusCode, raw)
		}
		var qr QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
		return qr, string(raw)
	}

	qr, raw := post(ts.URL+"/query?trace=1", `//a[./b/c]/d`)
	if qr.Trace == nil {
		t.Fatalf("first traced query returned no trace: %s", raw)
	}
	if qr.Trace.Name != "query" || len(qr.Trace.Children) == 0 {
		t.Errorf("trace root = %q with %d children", qr.Trace.Name, len(qr.Trace.Children))
	}
	match := qr.Trace.Children[0]
	if match.Name != "match" || match.DurNS <= 0 {
		t.Errorf("trace first child = %+v", match)
	}
	if _, ok := match.Stages["descent"]; !ok {
		// Stage times live on the filter/refine children; the match span
		// carries the attrs. Look one level down.
		found := false
		for _, c := range match.Children {
			if _, ok := c.Stages["descent"]; ok {
				found = true
			}
		}
		if !found {
			t.Errorf("no descent stage anywhere under match: %s", raw)
		}
	}

	// Same query again: served from cache, so there is nothing to trace.
	qr, raw = post(ts.URL+"/query?trace=1", `//a[./b/c]/d`)
	if !qr.Cached {
		t.Fatalf("second query not cached: %s", raw)
	}
	if qr.Trace != nil {
		t.Error("cache hit returned a trace, but no execution happened")
	}

	// Untraced request: no trace field even though the server traces.
	qr, _ = post(ts.URL+"/query", `//a//d/e`)
	if qr.Trace != nil {
		t.Error("request without ?trace=1 returned a trace")
	}
}

// TestTracingDisabled: DisableTracing suppresses traces, stage histograms
// and the slow log's trace trees without affecting results.
func TestTracingDisabled(t *testing.T) {
	ix := buildIndex(t, 20)
	srv := New(ix, Config{DisableTracing: true, CacheCapacity: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/query?trace=1", "text/plain", strings.NewReader(`//a/b`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace != nil {
		t.Error("DisableTracing server returned a trace")
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if srv.Metrics().Stages[st].Count() != 0 {
			t.Errorf("stage %s histogram observed %d samples with tracing off", st, srv.Metrics().Stages[st].Count())
		}
	}
}

// TestSlowLog: with a log-everything threshold, executed queries land in
// /debug/slowlog newest first with their trace trees; cache hits do not.
func TestSlowLog(t *testing.T) {
	ix := buildIndex(t, 50)
	srv := New(ix, Config{SlowLogThreshold: -1, SlowLogCapacity: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{`//a/b`, `//a//d/e`, `//a[./b/c]/d`, `//a`, `//d/e`, `/r/a/d`}
	for _, q := range queries {
		if code, _, raw := doQuery(t, ts.Client(), ts.URL, q); code != http.StatusOK {
			t.Fatalf("query %s: %d %s", q, code, raw)
		}
	}
	// Repeat: cache hits must not be logged again.
	doQuery(t, ts.Client(), ts.URL, queries[0])

	resp, err := ts.Client().Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Enabled     bool        `json:"enabled"`
		ThresholdMS int64       `json:"threshold_ms"`
		Total       uint64      `json:"total"`
		Entries     []SlowEntry `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Enabled {
		t.Fatal("slowlog disabled")
	}
	if body.Total != uint64(len(queries)) {
		t.Errorf("slowlog total = %d, want %d (cache hit must not log)", body.Total, len(queries))
	}
	if len(body.Entries) != 4 {
		t.Fatalf("ring kept %d entries, capacity 4", len(body.Entries))
	}
	// Newest first: the last 4 executed queries in reverse order.
	for i, e := range body.Entries {
		want := queries[len(queries)-1-i]
		if e.Query != want {
			t.Errorf("entry %d query = %q, want %q", i, e.Query, want)
		}
		if e.Trace == nil {
			t.Errorf("entry %d has no trace tree", i)
		}
		if e.ElapsedUS < 0 {
			t.Errorf("entry %d elapsed = %d", i, e.ElapsedUS)
		}
	}
}

// TestSlowLogRespectsThreshold: fast queries stay out of the log when the
// threshold is high.
func TestSlowLogRespectsThreshold(t *testing.T) {
	ix := buildIndex(t, 10)
	srv := New(ix, Config{SlowLogThreshold: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	doQuery(t, ts.Client(), ts.URL, `//a/b`)
	entries, total := srv.slowlog.Snapshot()
	if len(entries) != 0 || total != 0 {
		t.Errorf("slowlog = %d entries (total %d), want empty", len(entries), total)
	}
}

// TestPprofRoutes: the pprof index is reachable by default and removed by
// DisablePprof.
func TestPprofRoutes(t *testing.T) {
	ix := buildIndex(t, 5)
	for _, disabled := range []bool{false, true} {
		srv := New(ix, Config{DisablePprof: disabled})
		ts := httptest.NewServer(srv.Handler())
		resp, err := ts.Client().Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ts.Close()
		if disabled && resp.StatusCode == http.StatusOK {
			t.Error("pprof reachable with DisablePprof")
		}
		if !disabled && resp.StatusCode != http.StatusOK {
			t.Errorf("pprof index = %d, want 200", resp.StatusCode)
		}
	}
}
