package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the service's counter registry. Everything is lock-free: the
// hot path only does atomic adds, and readers (/metrics, /stats) only do
// atomic loads, so scraping never stalls query traffic.
type Metrics struct {
	// Served counts successfully answered queries.
	Served Counter
	// Errors counts queries that failed (parse errors excluded: those are
	// rejected before execution and counted in BadRequests).
	Errors Counter
	// BadRequests counts malformed requests (unparsable body or query).
	BadRequests Counter
	// Rejected counts requests turned away by admission control (429).
	Rejected Counter
	// Deadline counts queries cut off by their deadline or cancellation.
	Deadline Counter
	// CacheHits / CacheMisses count result-cache lookups.
	CacheHits   Counter
	CacheMisses Counter
	// FlightShared counts queries answered by piggybacking on an identical
	// in-flight query (singleflight collapse).
	FlightShared Counter
	// Corruptions counts queries that failed on detected storage corruption
	// (checksum mismatch, undecodable record).
	Corruptions Counter
	// TransientRetries counts the executor's single-shot retries of
	// transiently failed matches.
	TransientRetries Counter
	// DegradedServed counts queries answered with quarantined documents
	// skipped (partial but correct-for-healthy-data answers).
	DegradedServed Counter
	// PagesRead accumulates physical page reads attributed to queries.
	PagesRead Counter
	// InFlight is the number of requests currently being served.
	InFlight Gauge
	// Latency is the query wall-clock latency histogram.
	Latency Histogram
	// Stages holds one latency histogram per execution stage (descent,
	// fetch, connect, ... — the obs stage taxonomy), fed from per-query
	// traces. A stage with zero observations is omitted from /metrics.
	Stages [obs.NumStages]Histogram

	start time.Time
}

// ObserveStages records one executed query's per-stage durations. Stages
// the query never entered (zero windows) are skipped so their histograms
// keep reflecting only queries that actually exercised them.
func (m *Metrics) ObserveStages(durs [obs.NumStages]time.Duration, counts [obs.NumStages]int64) {
	for st := range durs {
		if counts[st] > 0 {
			m.Stages[st].Observe(durs[st])
		}
	}
}

// NewMetrics returns a zeroed registry.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// Uptime is the time since the registry was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// Counter is an atomic monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic up/down gauge.
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets: bucket i covers
// latencies up to 64µs·2^i, so the range spans 64µs to ~34s before the
// overflow bucket.
const histBuckets = 20

// Histogram is a fixed-layout exponential latency histogram with atomic
// buckets. Quantiles are estimated as the upper bound of the bucket holding
// the requested rank — good to a factor of two, which is what a serving
// dashboard needs.
type Histogram struct {
	counts   [histBuckets + 1]atomic.Uint64 // +1 = overflow bucket
	sumNanos atomic.Uint64
	count    atomic.Uint64
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) time.Duration {
	return time.Duration(64<<uint(i)) * time.Microsecond
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < histBuckets && d > bucketBound(i) {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observed latency (0 with no samples).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNanos.Load() / n)
}

// Quantile estimates the q-quantile (0 < q < 1) as the upper bound of the
// bucket containing that rank; the overflow bucket reports the largest
// tracked bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum > rank {
			if i == histBuckets {
				return bucketBound(histBuckets - 1)
			}
			return bucketBound(i)
		}
	}
	return bucketBound(histBuckets - 1)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (text/plain; version=0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("prix_queries_served_total", "Queries answered successfully.", m.Served.Load())
	counter("prix_query_errors_total", "Queries that failed during execution.", m.Errors.Load())
	counter("prix_bad_requests_total", "Requests rejected as malformed.", m.BadRequests.Load())
	counter("prix_rejected_total", "Requests rejected by admission control.", m.Rejected.Load())
	counter("prix_deadline_total", "Queries cut off by deadline or cancellation.", m.Deadline.Load())
	counter("prix_cache_hits_total", "Result cache hits.", m.CacheHits.Load())
	counter("prix_cache_misses_total", "Result cache misses.", m.CacheMisses.Load())
	counter("prix_flight_shared_total", "Queries collapsed onto an identical in-flight query.", m.FlightShared.Load())
	counter("prix_pages_read_total", "Physical pages read by queries.", m.PagesRead.Load())
	counter("prix_corruption_errors_total", "Queries failed on detected storage corruption.", m.Corruptions.Load())
	counter("prix_transient_retries_total", "Single-shot retries of transiently failed matches.", m.TransientRetries.Load())
	counter("prix_degraded_responses_total", "Queries answered with quarantined documents skipped.", m.DegradedServed.Load())
	fmt.Fprintf(w, "# HELP prix_in_flight Requests currently being served.\n# TYPE prix_in_flight gauge\nprix_in_flight %d\n", m.InFlight.Load())

	fmt.Fprintf(w, "# HELP prix_query_latency_seconds Query wall-clock latency.\n# TYPE prix_query_latency_seconds histogram\n")
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += m.Latency.counts[i].Load()
		fmt.Fprintf(w, "prix_query_latency_seconds_bucket{le=\"%g\"} %d\n", bucketBound(i).Seconds(), cum)
	}
	cum += m.Latency.counts[histBuckets].Load()
	fmt.Fprintf(w, "prix_query_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "prix_query_latency_seconds_sum %g\n", float64(m.Latency.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "prix_query_latency_seconds_count %d\n", m.Latency.count.Load())

	fmt.Fprintf(w, "# HELP prix_stage_latency_seconds Per-stage query execution latency.\n# TYPE prix_stage_latency_seconds histogram\n")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		h := &m.Stages[st]
		if h.Count() == 0 {
			continue
		}
		var scum uint64
		for i := 0; i < histBuckets; i++ {
			scum += h.counts[i].Load()
			fmt.Fprintf(w, "prix_stage_latency_seconds_bucket{stage=%q,le=\"%g\"} %d\n",
				st.String(), bucketBound(i).Seconds(), scum)
		}
		scum += h.counts[histBuckets].Load()
		fmt.Fprintf(w, "prix_stage_latency_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.String(), scum)
		fmt.Fprintf(w, "prix_stage_latency_seconds_sum{stage=%q} %g\n", st.String(), float64(h.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "prix_stage_latency_seconds_count{stage=%q} %d\n", st.String(), h.count.Load())
	}
}
