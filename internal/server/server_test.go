package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/prix"
	"repro/internal/twig"
	"repro/internal/xmltree"
)

// buildIndex makes an in-memory index over n copies of a small twig-rich
// document plus a few singletons so different queries have different counts.
func buildIndex(t *testing.T, n int) *prix.Index {
	t.Helper()
	var docs []*xmltree.Document
	for i := 0; i < n; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(a (b (c)) (d (e)))`))
	}
	docs = append(docs, xmltree.MustFromSExpr(n, `(a (b (c)) (x))`))
	docs = append(docs, xmltree.MustFromSExpr(n+1, `(r (a (d (e))))`))
	ix, err := prix.Build(docs, prix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func doQuery(t *testing.T, client *http.Client, base string, body string) (int, QueryResponse, string) {
	t.Helper()
	resp, err := client.Post(base+"/query", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("bad response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, qr, string(raw)
}

// Acceptance (a): 1000 requests from 32 goroutines against one shared index
// return results identical to direct Index.Match.
func TestConcurrentRequestsMatchDirect(t *testing.T) {
	ix := buildIndex(t, 100)
	queries := []string{`//a[./b/c]/d`, `//a//d/e`, `//d/e`, `//a/b`}
	type baseline struct {
		count   int
		matches []prix.Match
	}
	base := map[string]baseline{}
	for _, qs := range queries {
		ms, _, err := ix.Match(twig.MustParse(qs), prix.MatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		base[qs] = baseline{count: len(ms), matches: ms}
	}

	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 32
	const perG = 32 // 1024 requests total
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < perG; i++ {
				qs := queries[(g+i)%len(queries)]
				status, qr, raw := func() (int, QueryResponse, string) {
					resp, err := client.Post(ts.URL+"/query", "text/plain", strings.NewReader(qs))
					if err != nil {
						errs <- err
						return 0, QueryResponse{}, ""
					}
					defer resp.Body.Close()
					b, _ := io.ReadAll(resp.Body)
					var out QueryResponse
					if resp.StatusCode == http.StatusOK {
						if err := json.Unmarshal(b, &out); err != nil {
							errs <- fmt.Errorf("bad body %q: %v", b, err)
						}
					}
					return resp.StatusCode, out, string(b)
				}()
				if status == 0 {
					return
				}
				if status != http.StatusOK {
					errs <- fmt.Errorf("query %q: status %d (%s)", qs, status, raw)
					return
				}
				want := base[qs]
				if qr.Count != want.count {
					errs <- fmt.Errorf("query %q: count %d, want %d", qs, qr.Count, want.count)
					return
				}
				if len(qr.Matches) != len(want.matches) {
					errs <- fmt.Errorf("query %q: %d matches serialized, want %d", qs, len(qr.Matches), len(want.matches))
					return
				}
				for j := range qr.Matches {
					wm := want.matches[j]
					gm := qr.Matches[j]
					if gm.Doc != wm.DocID {
						errs <- fmt.Errorf("query %q match %d: doc %d, want %d", qs, j, gm.Doc, wm.DocID)
						return
					}
					for k := range wm.Images {
						if gm.Images[k] != wm.Images[k] {
							errs <- fmt.Errorf("query %q match %d: images %v, want %v", qs, j, gm.Images, wm.Images)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if snap.Served != goroutines*perG {
		t.Errorf("served = %d, want %d", snap.Served, goroutines*perG)
	}
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d after traffic, want 0", snap.InFlight)
	}
}

// slowSource delays every Match until the deadline has a chance to fire,
// then delegates — so the engine itself observes the expired context.
type slowSource struct {
	*prix.Index
	delay time.Duration
}

func (s *slowSource) Match(q *twig.Query, opts prix.MatchOptions) ([]prix.Match, *prix.QueryStats, error) {
	timer := time.NewTimer(s.delay)
	defer timer.Stop()
	if opts.Ctx != nil {
		select {
		case <-opts.Ctx.Done():
		case <-timer.C:
		}
	} else {
		<-timer.C
	}
	return s.Index.Match(q, opts)
}

// Acceptance (b): a 1ms deadline on a slow workload returns a deadline
// error without corrupting shared state.
func TestQueryDeadline(t *testing.T) {
	ix := buildIndex(t, 50)
	q := twig.MustParse(`//a[./b/c]/d`)
	baseline, _, err := ix.Match(q, prix.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(&slowSource{Index: ix, delay: 50 * time.Millisecond}, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"query": "//a[./b/c]/d", "timeout_ms": 1}`
	status, _, raw := doQuery(t, ts.Client(), ts.URL, body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline query: status %d (%s), want 504", status, raw)
	}
	if got := srv.Metrics().Deadline.Load(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
	// Shared state intact: a patient request succeeds with the right count.
	status, qr, raw := doQuery(t, ts.Client(), ts.URL, `{"query": "//a[./b/c]/d", "timeout_ms": 5000}`)
	if status != http.StatusOK {
		t.Fatalf("patient query: status %d (%s)", status, raw)
	}
	if qr.Count != len(baseline) {
		t.Errorf("patient query count = %d, want %d", qr.Count, len(baseline))
	}
	// And the index answers directly, too.
	ms, _, err := ix.Match(q, prix.MatchOptions{WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(baseline) {
		t.Errorf("direct count after deadline = %d, want %d", len(ms), len(baseline))
	}
}

// blockingSource parks every Match on a gate so tests control in-flight
// occupancy deterministically.
type blockingSource struct {
	*prix.Index
	entered chan struct{} // one tick per Match entry
	release chan struct{} // closed to let matches proceed
	calls   atomic.Int64
}

func (s *blockingSource) Match(q *twig.Query, opts prix.MatchOptions) ([]prix.Match, *prix.QueryStats, error) {
	s.calls.Add(1)
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.release
	return s.Index.Match(q, opts)
}

// Acceptance (c): load beyond max-in-flight yields 429, not queue collapse.
func TestOverloadRejects(t *testing.T) {
	ix := buildIndex(t, 10)
	src := &blockingSource{Index: ix, entered: make(chan struct{}, 16), release: make(chan struct{})}
	srv := New(src, Config{MaxInFlight: 2, DefaultTimeout: -1, CacheCapacity: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		count  int
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		qs := []string{`//a/b`, `//d/e`}[i]
		go func(qs string) {
			resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(qs))
			if err != nil {
				results <- result{status: -1}
				return
			}
			defer resp.Body.Close()
			var qr QueryResponse
			_ = json.NewDecoder(resp.Body).Decode(&qr)
			results <- result{status: resp.StatusCode, count: qr.Count}
		}(qs)
	}
	// Wait until both slots are genuinely occupied inside the engine.
	for i := 0; i < 2; i++ {
		select {
		case <-src.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked requests never reached the engine")
		}
	}
	// Every further request must be turned away immediately.
	for i := 0; i < 8; i++ {
		status, _, raw := doQuery(t, ts.Client(), ts.URL, fmt.Sprintf(`//q%d`, i))
		if status != http.StatusTooManyRequests {
			t.Fatalf("overload request %d: status %d (%s), want 429", i, status, raw)
		}
	}
	close(src.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("blocked request finished with status %d", r.status)
		}
	}
	if got := srv.Metrics().Rejected.Load(); got != 8 {
		t.Errorf("rejected = %d, want 8", got)
	}
	if got := srv.Metrics().Served.Load(); got != 2 {
		t.Errorf("served = %d, want 2", got)
	}
}

// Acceptance (d): graceful shutdown drains in-flight queries.
func TestDrainWaitsForInFlight(t *testing.T) {
	ix := buildIndex(t, 10)
	src := &blockingSource{Index: ix, entered: make(chan struct{}, 16), release: make(chan struct{})}
	srv := New(src, Config{DefaultTimeout: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(`//a/b`))
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		done <- resp.StatusCode
	}()
	select {
	case <-src.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the engine")
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Draining refuses new queries...
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _, _ := doQuery(t, ts.Client(), ts.URL, `//d/e`)
		if status == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting queries")
		}
		time.Sleep(time.Millisecond)
	}
	// ...but does not finish while a query is in flight.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(src.release)
	if status := <-done; status != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d, want 200", status)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned after the last query finished")
	}
	// Health endpoint reports draining.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

// Acceptance (e): /metrics and /stats counters are consistent with the
// observed request mix.
func TestMetricsConsistency(t *testing.T) {
	ix := buildIndex(t, 20)
	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []string{`//a/b`, `//d/e`, `//a[./b/c]/d`, `//a//d/e`, `//r/a`}
	const rounds = 10
	for r := 0; r < rounds; r++ {
		for _, qs := range queries {
			status, _, raw := doQuery(t, ts.Client(), ts.URL, qs)
			if status != http.StatusOK {
				t.Fatalf("query %q: status %d (%s)", qs, status, raw)
			}
		}
	}
	// One bad request for the error counters.
	if status, _, _ := doQuery(t, ts.Client(), ts.URL, `not an xpath`); status != http.StatusBadRequest {
		t.Fatalf("malformed query accepted with status %d", status)
	}

	total := uint64(rounds * len(queries))
	snap := srv.Snapshot()
	if snap.Served != total {
		t.Errorf("served = %d, want %d", snap.Served, total)
	}
	if snap.CacheMisses != uint64(len(queries)) {
		t.Errorf("cache misses = %d, want %d (one per distinct query)", snap.CacheMisses, len(queries))
	}
	if snap.CacheHits != total-uint64(len(queries)) {
		t.Errorf("cache hits = %d, want %d", snap.CacheHits, total-uint64(len(queries)))
	}
	if snap.CacheHits+snap.CacheMisses != total {
		t.Errorf("hits+misses = %d, want %d", snap.CacheHits+snap.CacheMisses, total)
	}
	if snap.BadRequests != 1 {
		t.Errorf("bad_requests = %d, want 1", snap.BadRequests)
	}
	if snap.InFlight != 0 {
		t.Errorf("in_flight = %d, want 0", snap.InFlight)
	}
	if snap.CacheEntries != len(queries) {
		t.Errorf("cache_entries = %d, want %d", snap.CacheEntries, len(queries))
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		fmt.Sprintf("prix_queries_served_total %d", total),
		fmt.Sprintf("prix_cache_hits_total %d", snap.CacheHits),
		fmt.Sprintf("prix_cache_misses_total %d", snap.CacheMisses),
		"prix_in_flight 0",
		fmt.Sprintf("prix_query_latency_seconds_count %d", total),
		`prix_query_latency_seconds_bucket{le="+Inf"} ` + fmt.Sprint(total),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Identical concurrent queries collapse onto one engine execution.
func TestSingleflightCollapse(t *testing.T) {
	ix := buildIndex(t, 30)
	src := &blockingSource{Index: ix, entered: make(chan struct{}, 16), release: make(chan struct{})}
	srv := New(src, Config{DefaultTimeout: -1, CacheCapacity: -1, MaxInFlight: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 8
	counts := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, qr, raw := doQuery(t, ts.Client(), ts.URL, `//a/b`)
			if status != http.StatusOK {
				t.Errorf("status %d (%s)", status, raw)
				counts <- -1
				return
			}
			counts <- qr.Count
		}()
	}
	// One request reaches the engine; give the rest time to pile onto the
	// same flight, then release.
	select {
	case <-src.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no request reached the engine")
	}
	time.Sleep(100 * time.Millisecond)
	close(src.release)
	wg.Wait()
	close(counts)
	want := -2
	for c := range counts {
		if want == -2 {
			want = c
		}
		if c != want {
			t.Errorf("divergent counts: %d vs %d", c, want)
		}
	}
	if calls := src.calls.Load(); calls >= n {
		t.Errorf("engine executed %d times for %d identical queries; want a collapse", calls, n)
	}
	if shared := srv.Metrics().FlightShared.Load(); shared == 0 {
		t.Error("no flight sharing recorded")
	}
}

// The result cache is invalidated by DynamicIndex.Insert.
func TestCacheInvalidatedOnInsert(t *testing.T) {
	var initial []*xmltree.Document
	for i := 0; i < 10; i++ {
		initial = append(initial, xmltree.MustFromSExpr(i, `(a (b (c)) (d (e)))`))
	}
	di, err := prix.NewDynamicIndex(initial, prix.Options{}, prix.DynamicOptions{Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(di, 128, 4, nil)
	q := twig.MustParse(`//a[./b/c]/d`)
	res, err := exec.Execute(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(initial) {
		t.Fatalf("initial matches = %d, want %d", len(res.Matches), len(initial))
	}
	// Second execution hits the cache.
	res, err = exec.Execute(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("second execution missed the cache")
	}
	if err := di.Insert(xmltree.MustFromSExpr(100, `(a (b (c)) (d (e)))`)); err != nil {
		t.Fatal(err)
	}
	res, err = exec.Execute(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("cache served a stale result across an Insert")
	}
	if len(res.Matches) != len(initial)+1 {
		t.Errorf("post-insert matches = %d, want %d", len(res.Matches), len(initial)+1)
	}
}

// The LRU evicts at capacity and the sharding spreads keys.
func TestCacheEviction(t *testing.T) {
	c := NewCache(8, 2)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), &cached{})
	}
	if n := c.Len(); n > 8 {
		t.Errorf("cache holds %d entries, cap 8", n)
	}
	c.Flush()
	if n := c.Len(); n != 0 {
		t.Errorf("cache holds %d entries after Flush", n)
	}
	// nil cache (disabled) is inert.
	var nc *Cache
	nc.Put("k", &cached{})
	if _, ok := nc.Get("k"); ok {
		t.Error("nil cache returned a value")
	}
}

// Histogram quantiles land in the right buckets.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if p50 := h.Quantile(0.5); p50 > time.Millisecond {
		t.Errorf("p50 = %v, want sub-millisecond", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 10*time.Millisecond {
		t.Errorf("p99 = %v, want tens of milliseconds", p99)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
}

// A hot-budget index surfaces its tier through /stats and /metrics; an
// uncompressed index leaves both blocks absent.
func TestHotTierSurfaces(t *testing.T) {
	var docs []*xmltree.Document
	for i := 0; i < 20; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(a (b (c)) (d (e)))`))
	}
	hotIx, err := prix.Build(docs, prix.Options{HotBudget: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(hotIx, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status, _, raw := doQuery(t, ts.Client(), ts.URL, `//a/b/c`); status != http.StatusOK {
		t.Fatalf("query: status %d (%s)", status, raw)
	}

	snap := srv.Snapshot()
	if snap.Hot == nil || !snap.Hot.Enabled {
		t.Fatalf("snapshot missing hot block: %+v", snap.Hot)
	}
	if snap.Hot.Tier.Bytes == 0 || snap.Hot.Tier.Hits == 0 {
		t.Errorf("tier unused: %+v", snap.Hot.Tier)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); !strings.Contains(s, `"hot"`) || !strings.Contains(s, `"budget_bytes"`) {
		t.Errorf("/stats JSON missing hot residency block: %s", s)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"prix_hot_bytes ", "prix_hot_budget_bytes 4194304", "prix_hot_hits_total "} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The uncompressed twin must not grow the surfaces.
	coldIx := buildIndex(t, 5)
	csrv := New(coldIx, Config{})
	if snap := csrv.Snapshot(); snap.Hot != nil {
		t.Errorf("uncompressed index reports hot block: %+v", snap.Hot)
	}
}
