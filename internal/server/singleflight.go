package server

import "sync"

// flightGroup collapses concurrent calls with the same key onto one
// execution: the first caller (the leader) runs fn, everyone else blocks
// and shares the leader's result. A minimal in-repo singleflight — the
// standard library does not ship one and the repo takes no dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val *cached
	err error
}

// Do executes fn under key, collapsing duplicates. shared reports whether
// this caller piggybacked on another caller's execution.
func (g *flightGroup) Do(key string, fn func() (*cached, error)) (val *cached, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
