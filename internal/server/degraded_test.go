package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/twig"
)

// Acceptance: with one document quarantined, the service keeps serving the
// healthy ones, flags the response (body field + X-Prix-Degraded header),
// reports a degraded /healthz, and counts it all in /metrics.
func TestDegradedModeServesHealthyDocs(t *testing.T) {
	ix := buildIndex(t, 4)
	full, _, err := ix.Match(twig.MustParse(`//a/b`), prix.MatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix.Store().Quarantine(0)

	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(`//a/b`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: degraded service must keep answering", resp.StatusCode)
	}
	if resp.Header.Get("X-Prix-Degraded") != "true" {
		t.Error("X-Prix-Degraded header missing")
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("bad body %q: %v", raw, err)
	}
	if !qr.Degraded {
		t.Error("response not marked degraded")
	}
	if len(qr.Quarantined) != 1 || qr.Quarantined[0] != 0 {
		t.Errorf("quarantined = %v, want [0]", qr.Quarantined)
	}
	if qr.Count != len(full)-1 {
		t.Errorf("count = %d, want %d (full answer minus doc 0)", qr.Count, len(full)-1)
	}
	for _, m := range qr.Matches {
		if m.Doc == 0 {
			t.Error("match served from quarantined doc 0")
		}
	}
	// Degraded answers must not stick in the result cache.
	if n := srv.Executor().CacheLen(); n != 0 {
		t.Errorf("degraded result cached (%d entries)", n)
	}

	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hzBody, _ := io.ReadAll(hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d: degraded is not down", hz.StatusCode)
	}
	if !strings.Contains(string(hzBody), `"degraded"`) {
		t.Errorf("healthz body %s does not report degraded", hzBody)
	}
	if hz.Header.Get("X-Prix-Degraded") != "true" {
		t.Error("healthz missing X-Prix-Degraded header")
	}

	mx, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mxBody, _ := io.ReadAll(mx.Body)
	mx.Body.Close()
	for _, want := range []string{
		"prix_quarantined_docs 1",
		"prix_degraded_responses_total 1",
	} {
		if !strings.Contains(string(mxBody), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if snap := srv.Snapshot(); snap.Quarantined != 1 || snap.Degraded != 1 {
		t.Errorf("snapshot quarantined=%d degraded=%d", snap.Quarantined, snap.Degraded)
	}
}

// faultySource fails its first n Matches with a transient error; the
// executor's single retry must absorb n==1 and give up at n==2.
type faultySource struct {
	*prix.Index
	failures int
}

func (s *faultySource) Match(q *twig.Query, opts prix.MatchOptions) ([]prix.Match, *prix.QueryStats, error) {
	if s.failures > 0 {
		s.failures--
		return nil, nil, pager.ErrInjected
	}
	return s.Index.Match(q, opts)
}

func TestTransientFaultRetriedOnce(t *testing.T) {
	ix := buildIndex(t, 4)

	// One failure: absorbed by the retry.
	src := &faultySource{Index: ix, failures: 1}
	ex := NewExecutor(src, 0, 0, nil)
	res, err := ex.Execute(tCtx(t), twig.MustParse(`//a/b`), QueryOptions{})
	if err != nil {
		t.Fatalf("single transient fault not absorbed: %v", err)
	}
	if res == nil || len(res.Matches) == 0 {
		t.Fatal("retry returned no result")
	}
	if got := ex.Metrics().TransientRetries.Load(); got != 1 {
		t.Errorf("TransientRetries = %d, want 1", got)
	}

	// Two failures: exactly one retry, then the error surfaces.
	src = &faultySource{Index: ix, failures: 2}
	ex = NewExecutor(src, 0, 0, nil)
	if _, err := ex.Execute(tCtx(t), twig.MustParse(`//a/b`), QueryOptions{}); err == nil {
		t.Fatal("second consecutive fault swallowed: retry not bounded")
	}
	if src.failures != 0 {
		t.Errorf("expected both scheduled failures consumed, %d left", src.failures)
	}
}

// The HTTP layer maps post-retry transient failures to 503 + Retry-After
// and corruption to 500, counting each.
func TestErrorClassStatusMapping(t *testing.T) {
	ix := buildIndex(t, 2)
	src := &faultySource{Index: ix, failures: 1 << 30} // never heals
	srv := New(src, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/query", "text/plain", strings.NewReader(`//a/b`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("transient failure status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := srv.Metrics().TransientRetries.Load(); got != 1 {
		t.Errorf("TransientRetries = %d, want 1", got)
	}
}

func tCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}
