package server

import (
	"container/list"
	"sync"

	"repro/internal/prix"
)

// cached is one materialized query result. Matches is shared between the
// cache and every reader, so it must be treated as immutable.
type cached struct {
	matches []prix.Match
	stats   prix.QueryStats
}

// Cache is a sharded LRU for query results, keyed by the canonical query
// string plus execution options. Sharding keeps lock hold times short under
// concurrent readers; each shard has its own LRU list.
type Cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used
}

type cacheItem struct {
	key string
	val *cached
}

// NewCache builds a cache holding up to capacity entries across shards
// power-of-two-rounded shards. A capacity < 1 returns nil (caching off).
func NewCache(capacity, shards int) *Cache {
	if capacity < 1 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	// Round shards to a power of two so the hash can mask instead of mod.
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := capacity / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, n)}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[string]*list.Element)
	}
	return c
}

// shard picks the shard for a key (FNV-1a).
func (c *Cache) shard(key string) *cacheShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&uint32(len(c.shards)-1)]
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*cached, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put stores a result, evicting the least recently used entry on overflow.
func (c *Cache) Put(key string, val *cached) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheItem).val = val
		s.lru.MoveToFront(el)
		return
	}
	for len(s.entries) >= s.cap {
		back := s.lru.Back()
		if back == nil {
			break
		}
		delete(s.entries, back.Value.(*cacheItem).key)
		s.lru.Remove(back)
	}
	s.entries[key] = s.lru.PushFront(&cacheItem{key: key, val: val})
}

// Flush drops every entry (called when the index mutates).
func (c *Cache) Flush() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
