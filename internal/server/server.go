// Package server is the PRIX query service: an HTTP front end over one
// shared read-optimized index (the deployment shape of §6 at serving time —
// many concurrent clients, one index). It layers, bottom up:
//
//   - an Executor: the single query execution path (parse → result cache →
//     singleflight collapse → Index.Match with context cancellation),
//     shared by the HTTP handlers, cmd/prixquery and the serving benchmark;
//   - admission control: a bounded in-flight slot pool; requests beyond the
//     bound are rejected immediately with 429 instead of queueing into
//     collapse;
//   - per-request deadlines plumbed into the engine, which observes
//     cancellation between B+-tree range queries;
//   - graceful drain: new work is refused while in-flight queries finish;
//   - a lock-free metrics registry rendered in Prometheus text format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/compact"
	"repro/internal/obs"
	"repro/internal/prix"
	"repro/internal/scrub"
	"repro/internal/shard"
)

// shardedSource is the optional scatter-gather interface of a Source
// (satisfied by *shard.Coordinator). When present, the service names
// degraded shards in X-Prix-Degraded and /healthz, and /stats carries the
// per-shard serving counters.
type shardedSource interface {
	NumShards() int
	DegradedShards() []int
	ShardStats() []shard.Stats
	TopologyEpoch() uint64
}

// Config tunes the service.
type Config struct {
	// MaxInFlight bounds concurrently executing requests; excess requests
	// get 429. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// DefaultTimeout bounds queries that do not ask for a deadline.
	// 0 means DefaultQueryTimeout; negative means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 30s).
	MaxTimeout time.Duration
	// CacheCapacity is the result cache size in entries (default 1024);
	// negative disables caching.
	CacheCapacity int
	// CacheShards is the cache shard count (default 16).
	CacheShards int
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// MaxMatches caps the matches serialized per response (default 1000;
	// negative means unlimited). The count field always reports the full
	// cardinality.
	MaxMatches int
	// Parallelism is the default per-query worker cap handed to the engine
	// (prix.MatchOptions.Parallelism) when a request does not set its own:
	// 0 means GOMAXPROCS, 1 the serial path. Results are identical at every
	// setting; this only trades single-query latency against cross-request
	// throughput on a loaded server.
	Parallelism int
	// SlowLogCapacity sizes the slow-query ring buffer served at
	// GET /debug/slowlog (default 64; negative disables it).
	SlowLogCapacity int
	// SlowLogThreshold is the elapsed time at which a query is logged
	// (default 100ms; negative logs every query).
	SlowLogThreshold time.Duration
	// DisableTracing turns off per-request span collection. With tracing on
	// (the default) every executed query feeds the per-stage latency
	// histograms and the slow log, and clients may request their span tree
	// with POST /query?trace=1.
	DisableTracing bool
	// DisablePprof removes the net/http/pprof handlers from /debug/pprof/.
	DisablePprof bool
}

// Defaults for Config zero values.
const (
	DefaultMaxInFlight  = 64
	DefaultQueryTimeout = 2 * time.Second
	DefaultMaxTimeout   = 30 * time.Second
	DefaultCacheSize    = 1024
	DefaultCacheShards  = 16
	DefaultMaxBody      = 1 << 20
	DefaultMaxMatches   = 1000
	DefaultSlowLogCap   = 64
	DefaultSlowLogAfter = 100 * time.Millisecond
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = DefaultMaxInFlight
	}
	if out.DefaultTimeout == 0 {
		out.DefaultTimeout = DefaultQueryTimeout
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = DefaultMaxTimeout
	}
	if out.CacheCapacity == 0 {
		out.CacheCapacity = DefaultCacheSize
	}
	if out.CacheShards <= 0 {
		out.CacheShards = DefaultCacheShards
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = DefaultMaxBody
	}
	if out.MaxMatches == 0 {
		out.MaxMatches = DefaultMaxMatches
	}
	if out.SlowLogCapacity == 0 {
		out.SlowLogCapacity = DefaultSlowLogCap
	}
	if out.SlowLogThreshold == 0 {
		out.SlowLogThreshold = DefaultSlowLogAfter
	} else if out.SlowLogThreshold < 0 {
		out.SlowLogThreshold = 0 // log everything
	}
	return out
}

// Server is the HTTP query service.
type Server struct {
	cfg      Config
	exec     *Executor
	metrics  *Metrics
	sem      chan struct{}
	draining chan struct{} // closed when draining starts
	drainOne sync.Once
	inflight sync.WaitGroup
	scrs     []*scrub.Scrubber
	cmp      *compact.Compactor
	slowlog  *SlowLog
}

// New builds a service over the source. If the source is mutable
// (DynamicIndex), the result cache is invalidated on every insert.
func New(src Source, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	return &Server{
		cfg:      cfg,
		exec:     NewExecutor(src, cfg.CacheCapacity, cfg.CacheShards, m),
		metrics:  m,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		draining: make(chan struct{}),
		slowlog:  NewSlowLog(cfg.SlowLogCapacity, cfg.SlowLogThreshold),
	}
}

// Executor returns the server's execution path (shared with CLIs/benches).
func (s *Server) Executor() *Executor { return s.exec }

// Metrics returns the server's registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// SetScrubber attaches a background scrubber, enabling GET /scrub and
// POST /repair. Call before serving; the server does not start or stop the
// scrubber, it only reports on it and triggers repair passes.
func (s *Server) SetScrubber(sc *scrub.Scrubber) { s.scrs = []*scrub.Scrubber{sc} }

// SetScrubbers attaches one scrubber per backing index — the sharded
// deployment shape, where every shard replica scrubs (and repairs)
// independently. GET /scrub reports all of them; POST /repair runs a pass
// on each.
func (s *Server) SetScrubbers(scs []*scrub.Scrubber) { s.scrs = scs }

// SetCompactor attaches the background compactor of a compact.Root source,
// enabling POST /compact and the compaction gauges in /metrics and /stats.
// Like SetScrubber, the server only reports on it and triggers runs; the
// caller owns Start/Stop.
func (s *Server) SetCompactor(c *compact.Compactor) { s.cmp = c }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /scrub", s.handleScrub)
	mux.HandleFunc("POST /repair", s.handleRepair)
	mux.HandleFunc("POST /compact", s.handleCompact)
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	if !s.cfg.DisablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Drain stops admitting queries and waits for in-flight ones to finish, or
// for ctx to expire. It is idempotent; /healthz reports 503 once draining.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOne.Do(func() { close(s.draining) })
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// QueryRequest is the POST /query body. A plain-text body is accepted too:
// the whole body is then the XPath and every option takes its default.
type QueryRequest struct {
	// Query is the XPath-subset query text.
	Query string `json:"query"`
	// Unordered finds unordered twig matches (§5.7).
	Unordered bool `json:"unordered,omitempty"`
	// NoMaxGap disables Theorem 4 pruning.
	NoMaxGap bool `json:"no_maxgap,omitempty"`
	// TimeoutMS overrides the server's default query deadline (capped by
	// the server's MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// CountOnly omits the matches array from the response.
	CountOnly bool `json:"count_only,omitempty"`
	// Limit caps the matches serialized (0 = server default).
	Limit int `json:"limit,omitempty"`
	// Parallelism overrides the server's default per-query worker cap
	// (0 = server default; 1 = serial). Results are identical at every
	// setting, so it never affects result caching.
	Parallelism int `json:"parallelism,omitempty"`
	// AsOf answers the query at a historical version (0 = latest): the
	// document set reflects exactly the inserts/updates/deletes whose
	// versions are <= as_of. Requires a versioned index.
	AsOf uint64 `json:"as_of,omitempty"`
}

// QueryResponse is the POST /query response.
type QueryResponse struct {
	Query     string `json:"query"`
	Count     int    `json:"count"`
	Cached    bool   `json:"cached"`
	Shared    bool   `json:"shared,omitempty"`
	Truncated bool   `json:"truncated,omitempty"`
	// Degraded reports that quarantined (corrupt) documents were skipped:
	// the answer is complete over every healthy document but may miss
	// matches in the quarantined ones. Mirrored in the X-Prix-Degraded
	// response header so proxies can flag it without parsing the body.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedShards names the shards that contributed only partial (or no)
	// results, when the service runs a sharded backend ("shard-002", ...).
	// The X-Prix-Degraded header carries the same names comma-joined; a
	// degraded single-index service sends "true" there instead.
	DegradedShards []string `json:"degraded_shards,omitempty"`
	// Quarantined lists the skipped docids when Degraded is set.
	Quarantined []uint32     `json:"quarantined,omitempty"`
	Matches     []MatchJSON  `json:"matches,omitempty"`
	Stats       ResponseStat `json:"stats"`
	// Trace is the execution span tree, present only when the request asked
	// for it (?trace=1), the server has tracing enabled, and the result was
	// actually computed by this request — cache hits and singleflight
	// followers have no execution of their own to trace.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

// MatchJSON is one twig occurrence on the wire.
type MatchJSON struct {
	Doc    uint32  `json:"doc"`
	Images []int32 `json:"images"`
	Root   int32   `json:"root"`
}

// ResponseStat is the engine accounting on the wire.
type ResponseStat struct {
	ElapsedUS       int64  `json:"elapsed_us"`
	RangeQueries    int    `json:"range_queries"`
	Candidates      int    `json:"candidates"`
	PagesRead       uint64 `json:"pages_read"`
	RecordFetches   int    `json:"record_fetches,omitempty"`
	RecordCacheHits int    `json:"record_cache_hits,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// parseRequest decodes the body: JSON when it looks like an object, raw
// XPath text otherwise.
func parseRequest(body []byte) (QueryRequest, error) {
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "{") {
		var req QueryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return QueryRequest{}, fmt.Errorf("bad JSON body: %w", err)
		}
		return req, nil
	}
	return QueryRequest{Query: trimmed}, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.metrics.Rejected.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	// Admission control: try-acquire an in-flight slot; never queue. A
	// rejected request costs one channel operation, so overload degrades
	// to cheap 429s instead of a growing queue.
	select {
	case s.sem <- struct{}{}:
	default:
		s.metrics.Rejected.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: fmt.Sprintf("over capacity (%d in flight)", cap(s.sem)),
		})
		return
	}
	s.inflight.Add(1)
	s.metrics.InFlight.Inc()
	defer func() {
		s.metrics.InFlight.Dec()
		s.inflight.Done()
		<-s.sem
	}()

	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		s.metrics.BadRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "read body: " + err.Error()})
		return
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		s.metrics.BadRequests.Inc()
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("body exceeds %d bytes", s.cfg.MaxBodyBytes),
		})
		return
	}
	req, err := parseRequest(body)
	if err != nil {
		s.metrics.BadRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.metrics.BadRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty query"})
		return
	}
	q, err := ParseQuery(req.Query)
	if err != nil {
		s.metrics.BadRequests.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	par := s.cfg.Parallelism
	if req.Parallelism > 0 {
		par = req.Parallelism
	}
	// With tracing enabled every executed query carries a trace: it feeds
	// the per-stage histograms and the slow log even when the client did not
	// ask to see it. The engine's zero-trace fast path is reserved for
	// servers that opt out via DisableTracing.
	var tr *obs.Trace
	if !s.cfg.DisableTracing {
		tr = obs.NewTrace("query")
	}
	wantTrace := r.URL.Query().Get("trace") == "1"
	res, err := s.exec.Execute(ctx, q, QueryOptions{
		Unordered:     req.Unordered,
		DisableMaxGap: req.NoMaxGap,
		Parallelism:   par,
		Trace:         tr,
		AsOf:          req.AsOf,
	})
	if err != nil {
		switch {
		case isContextErr(err):
			s.metrics.Deadline.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: err.Error()})
		case errors.Is(err, prix.ErrNeedsExtendedIndex):
			s.metrics.Errors.Inc()
			writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: err.Error()})
		case prix.IsCorruption(err):
			// Corruption the engine could not route around (e.g. an index
			// page, not a document record). Permanent until repaired.
			s.metrics.Corruptions.Inc()
			s.metrics.Errors.Inc()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		case prix.IsTransient(err):
			// Already retried once by the executor; tell the client to back
			// off and try again rather than declaring the query failed.
			s.metrics.Errors.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			s.metrics.Errors.Inc()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}

	s.metrics.Served.Inc()
	elapsed := time.Since(start)
	s.metrics.Latency.Observe(elapsed)

	// A cache hit or a singleflight follower executed nothing, so its trace
	// is empty: only results this request computed feed the stage
	// histograms, the slow log and the response's trace tree.
	executed := tr != nil && !res.Cached && !res.Shared
	var tree *obs.SpanJSON
	if executed {
		tr.Finish()
		durs, counts := tr.StageTotals()
		s.metrics.ObserveStages(durs, counts)
		if wantTrace || (s.slowlog != nil && elapsed >= s.slowlog.Threshold()) {
			tree = tr.Tree()
		}
		s.slowlog.Observe(elapsed, SlowEntry{
			Time:        start.UTC().Format(time.RFC3339Nano),
			Query:       q.String(),
			Unordered:   req.Unordered,
			Parallelism: par,
			ElapsedUS:   elapsed.Microseconds(),
			Count:       len(res.Matches),
			Candidates:  res.Stats.Candidates,
			PagesRead:   res.Stats.PagesRead,
			Degraded:    res.Stats.Degraded,
			Trace:       tree,
		})
	}

	resp := QueryResponse{
		Query:    q.String(),
		Count:    len(res.Matches),
		Cached:   res.Cached,
		Shared:   res.Shared,
		Degraded: res.Stats.Degraded,
		Stats: ResponseStat{
			ElapsedUS:       res.Stats.Elapsed.Microseconds(),
			RangeQueries:    res.Stats.RangeQueries,
			Candidates:      res.Stats.Candidates,
			PagesRead:       res.Stats.PagesRead,
			RecordFetches:   res.Stats.RecordFetches,
			RecordCacheHits: res.Stats.RecordCacheHits,
		},
	}
	if wantTrace && executed {
		resp.Trace = tree
	}
	if resp.Degraded {
		s.metrics.DegradedServed.Inc()
		resp.Quarantined = s.exec.Source().Quarantined()
		if names := shardNames(res.Stats.DegradedShards); len(names) > 0 {
			resp.DegradedShards = names
			w.Header().Set("X-Prix-Degraded", strings.Join(names, ","))
		} else {
			w.Header().Set("X-Prix-Degraded", "true")
		}
	}
	if !req.CountOnly {
		limit := req.Limit
		if limit <= 0 {
			limit = s.cfg.MaxMatches
		}
		n := len(res.Matches)
		if limit > 0 && n > limit {
			n = limit
			resp.Truncated = true
		}
		resp.Matches = make([]MatchJSON, n)
		for i := 0; i < n; i++ {
			m := &res.Matches[i]
			resp.Matches[i] = MatchJSON{Doc: m.DocID, Images: m.Images, Root: m.Root}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardNames renders shard ordinals as their canonical names.
func shardNames(ids []int) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = shard.Name(id)
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	body := map[string]any{
		"status":   "ok",
		"docs":     s.exec.Source().NumDocs(),
		"extended": s.exec.Source().Extended(),
	}
	degraded := false
	if sh, ok := s.exec.Source().(shardedSource); ok {
		body["shards"] = sh.NumShards()
		body["topology_epoch"] = sh.TopologyEpoch()
		if names := shardNames(sh.DegradedShards()); len(names) > 0 {
			degraded = true
			body["degraded_shards"] = names
			w.Header().Set("X-Prix-Degraded", strings.Join(names, ","))
		}
	}
	// A quarantine (or a down shard) makes the service degraded, not down:
	// it still answers over every healthy document, so the status stays 200
	// (load balancers keep routing) while the body and header flag the
	// partial coverage.
	if q := s.exec.Source().Quarantined(); len(q) > 0 {
		degraded = true
		body["quarantined"] = q
		if w.Header().Get("X-Prix-Degraded") == "" {
			w.Header().Set("X-Prix-Degraded", "true")
		}
	}
	if degraded {
		body["status"] = "degraded"
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
	// Quarantine size is state held by the index, not the registry, so it is
	// rendered here where the source is in reach.
	fmt.Fprintf(w, "# HELP prix_quarantined_docs Documents quarantined after corruption was detected.\n"+
		"# TYPE prix_quarantined_docs gauge\nprix_quarantined_docs %d\n",
		len(s.exec.Source().Quarantined()))
	if sh, ok := s.exec.Source().(shardedSource); ok {
		fmt.Fprintf(w, "# HELP prix_degraded_shards Shards currently serving partial results.\n"+
			"# TYPE prix_degraded_shards gauge\nprix_degraded_shards %d\n",
			len(sh.DegradedShards()))
	}
	if hs, ok := s.exec.Source().(hotSource); ok {
		if st := hs.HotStats(); st.Enabled {
			fmt.Fprintf(w, "# HELP prix_hot_bytes Bytes resident in the compressed in-memory hot tier.\n"+
				"# TYPE prix_hot_bytes gauge\nprix_hot_bytes %d\n", st.Tier.Bytes)
			fmt.Fprintf(w, "# HELP prix_hot_budget_bytes Configured hot-tier byte budget.\n"+
				"# TYPE prix_hot_budget_bytes gauge\nprix_hot_budget_bytes %d\n", st.Tier.Budget)
			fmt.Fprintf(w, "# HELP prix_hot_items Structures resident in the hot tier.\n"+
				"# TYPE prix_hot_items gauge\nprix_hot_items %d\n", st.Tier.Items)
			fmt.Fprintf(w, "# HELP prix_hot_hits_total Lookups served from the hot tier.\n"+
				"# TYPE prix_hot_hits_total counter\nprix_hot_hits_total %d\n", st.Tier.Hits)
			fmt.Fprintf(w, "# HELP prix_hot_misses_total Hot-tier lookups that fell back to the B+-trees or store.\n"+
				"# TYPE prix_hot_misses_total counter\nprix_hot_misses_total %d\n", st.Tier.Misses)
			fmt.Fprintf(w, "# HELP prix_hot_evictions_total Structures demoted from the hot tier under budget pressure.\n"+
				"# TYPE prix_hot_evictions_total counter\nprix_hot_evictions_total %d\n", st.Tier.Evictions)
		}
	}
	if vs, ok := s.exec.Source().(versionSource); ok {
		if st := vs.VersionStats(); st.Enabled {
			fmt.Fprintf(w, "# HELP prix_versions_total Latest assigned MVCC version (insert/update/delete counter).\n"+
				"# TYPE prix_versions_total counter\nprix_versions_total %d\n", st.Current)
			fmt.Fprintf(w, "# HELP prix_tombstones_total Documents deleted at the latest version.\n"+
				"# TYPE prix_tombstones_total gauge\nprix_tombstones_total %d\n", st.Tombstones)
		}
	}
	if s.cmp != nil {
		st := s.cmp.Stats()
		running := 0
		if st.Running {
			running = 1
		}
		fmt.Fprintf(w, "# HELP prix_compactions_total Completed background compactions.\n"+
			"# TYPE prix_compactions_total counter\nprix_compactions_total %d\n", st.Runs)
		fmt.Fprintf(w, "# HELP prix_compaction_failures_total Compactions aborted before commit.\n"+
			"# TYPE prix_compaction_failures_total counter\nprix_compaction_failures_total %d\n", st.Failures)
		fmt.Fprintf(w, "# HELP prix_compactions_skipped_total Compaction intervals skipped with nothing to do.\n"+
			"# TYPE prix_compactions_skipped_total counter\nprix_compactions_skipped_total %d\n", st.Skipped)
		fmt.Fprintf(w, "# HELP prix_compaction_docs_total Documents rewritten by compactions.\n"+
			"# TYPE prix_compaction_docs_total counter\nprix_compaction_docs_total %d\n", st.DocsCompacted)
		fmt.Fprintf(w, "# HELP prix_compaction_epoch Serving epoch (bumps on every swap).\n"+
			"# TYPE prix_compaction_epoch gauge\nprix_compaction_epoch %d\n", st.Epoch)
		fmt.Fprintf(w, "# HELP prix_compaction_running Whether a compaction is in flight.\n"+
			"# TYPE prix_compaction_running gauge\nprix_compaction_running %d\n", running)
		fmt.Fprintf(w, "# HELP prix_compaction_last_pause_seconds Insert freeze window of the last compaction.\n"+
			"# TYPE prix_compaction_last_pause_seconds gauge\nprix_compaction_last_pause_seconds %g\n",
			st.LastPause.Seconds())
	}
}

// StatsSnapshot is the GET /stats payload.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Docs          int     `json:"docs"`
	Served        uint64  `json:"served"`
	Errors        uint64  `json:"errors"`
	BadRequests   uint64  `json:"bad_requests"`
	Rejected      uint64  `json:"rejected"`
	Deadline      uint64  `json:"deadline"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	FlightShared  uint64  `json:"flight_shared"`
	PagesRead     uint64  `json:"pages_read"`
	Corruptions   uint64  `json:"corruptions"`
	Retries       uint64  `json:"transient_retries"`
	Degraded      uint64  `json:"degraded_served"`
	Quarantined   int     `json:"quarantined_docs"`
	InFlight      int64   `json:"in_flight"`
	LatencyMeanUS int64   `json:"latency_mean_us"`
	LatencyP50US  int64   `json:"latency_p50_us"`
	LatencyP95US  int64   `json:"latency_p95_us"`
	LatencyP99US  int64   `json:"latency_p99_us"`
	// Sharded backends only: topology and the per-shard serving counters.
	// The top-level fields (docs, pages_read, quarantined_docs, ...) already
	// aggregate across every shard and replica; this is the breakdown.
	NumShards      int           `json:"num_shards,omitempty"`
	TopologyEpoch  uint64        `json:"topology_epoch,omitempty"`
	DegradedShards []string      `json:"degraded_shards,omitempty"`
	Shards         []shard.Stats `json:"shards,omitempty"`
	// Compaction is present when a background compactor is attached.
	Compaction *compact.Stats `json:"compaction,omitempty"`
	// Hot is present when the backend serves from a compressed in-memory
	// hot tier (prix.Options.HotBudget > 0): residency and hit counters.
	Hot *prix.HotStats `json:"hot,omitempty"`
	// Versions is present when the backend carries MVCC version state:
	// the current version counter and the tombstone census. AS OF queries
	// ("as_of" in QueryRequest) resolve against any version up to Current.
	Versions *prix.VersionStats `json:"versions,omitempty"`
}

// Snapshot assembles the current stats.
func (s *Server) Snapshot() StatsSnapshot {
	m := s.metrics
	snap := StatsSnapshot{
		UptimeSeconds: m.Uptime().Seconds(),
		Docs:          s.exec.Source().NumDocs(),
		Served:        m.Served.Load(),
		Errors:        m.Errors.Load(),
		BadRequests:   m.BadRequests.Load(),
		Rejected:      m.Rejected.Load(),
		Deadline:      m.Deadline.Load(),
		CacheHits:     m.CacheHits.Load(),
		CacheMisses:   m.CacheMisses.Load(),
		CacheEntries:  s.exec.CacheLen(),
		FlightShared:  m.FlightShared.Load(),
		PagesRead:     m.PagesRead.Load(),
		Corruptions:   m.Corruptions.Load(),
		Retries:       m.TransientRetries.Load(),
		Degraded:      m.DegradedServed.Load(),
		Quarantined:   len(s.exec.Source().Quarantined()),
		InFlight:      m.InFlight.Load(),
		LatencyMeanUS: m.Latency.Mean().Microseconds(),
		LatencyP50US:  m.Latency.Quantile(0.50).Microseconds(),
		LatencyP95US:  m.Latency.Quantile(0.95).Microseconds(),
		LatencyP99US:  m.Latency.Quantile(0.99).Microseconds(),
	}
	if sh, ok := s.exec.Source().(shardedSource); ok {
		snap.NumShards = sh.NumShards()
		snap.TopologyEpoch = sh.TopologyEpoch()
		snap.DegradedShards = shardNames(sh.DegradedShards())
		snap.Shards = sh.ShardStats()
	}
	if s.cmp != nil {
		st := s.cmp.Stats()
		snap.Compaction = &st
	}
	if hs, ok := s.exec.Source().(hotSource); ok {
		if st := hs.HotStats(); st.Enabled {
			snap.Hot = &st
		}
	}
	if vs, ok := s.exec.Source().(versionSource); ok {
		if st := vs.VersionStats(); st.Enabled {
			snap.Versions = &st
		}
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleSlowLog serves the slow-query ring buffer, newest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	if s.slowlog == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	entries, total := s.slowlog.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":      true,
		"threshold_ms": s.slowlog.Threshold().Milliseconds(),
		"total":        total,
		"entries":      entries,
	})
}

// handleScrub reports the scrubbers' counters and last passes. One
// scrubber (the single-index shape) keeps the original flat payload;
// a sharded service reports one entry per backing index.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if len(s.scrs) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	if len(s.scrs) == 1 {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled":     true,
			"stats":       s.scrs[0].Stats(),
			"last_report": s.scrs[0].LastReport(),
		})
		return
	}
	indexes := make([]map[string]any, len(s.scrs))
	for i, sc := range s.scrs {
		indexes[i] = map[string]any{
			"stats":       sc.Stats(),
			"last_report": sc.LastReport(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"indexes": indexes,
	})
}

// handleRepair runs one repair pass synchronously and returns its report.
// This is the online-repair trigger: damage found by earlier scrub passes
// (or by degraded queries) is healed without restarting the server, and the
// response says what was rewritten, rebuilt or left for RestoreSnapshot.
func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	if len(s.scrs) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no scrubber attached"})
		return
	}
	if len(s.scrs) == 1 {
		rep, err := s.scrs[0].RepairNow(r.Context())
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]any{
				"error":  err.Error(),
				"report": rep,
			})
			return
		}
		// The repair may have flipped the service out of degraded mode;
		// invalidate cached degraded results so full answers are recomputed.
		s.exec.InvalidateCache()
		writeJSON(w, http.StatusOK, rep)
		return
	}
	// Sharded: repair every backing index; a failure on one does not stop
	// the others (each shard replica heals independently).
	reports := make([]map[string]any, len(s.scrs))
	failed := false
	for i, sc := range s.scrs {
		rep, err := sc.RepairNow(r.Context())
		entry := map[string]any{"report": rep}
		if err != nil {
			entry["error"] = err.Error()
			failed = true
		}
		reports[i] = entry
	}
	s.exec.InvalidateCache()
	status := http.StatusOK
	if failed {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{"indexes": reports})
}

// handleCompact triggers one compaction synchronously and returns its
// report. The run is detached from the request context inside RunOnce — a
// client disconnect or proxy timeout does not abort the compaction, which
// keeps running to commit (only compactor Stop cancels it); the dropped
// response is recoverable via /stats. An aborted compaction is not fatal
// to serving — the old epoch keeps answering — so the error response
// carries the typed phase detail for the operator and nothing else
// changes.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if s.cmp == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no compactor attached"})
		return
	}
	rep, err := s.cmp.RunOnce(r.Context())
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, compact.ErrCompacting) {
			status = http.StatusConflict
		} else if errors.Is(err, compact.ErrStopped) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]any{
			"error":  err.Error(),
			"report": rep,
		})
		return
	}
	// The swap's epoch bump already retires cached results keyed on the old
	// epoch; the explicit flush just reclaims their memory immediately.
	s.exec.InvalidateCache()
	writeJSON(w, http.StatusOK, rep)
}
