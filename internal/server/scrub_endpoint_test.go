package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/pager"
	"repro/internal/scrub"
)

func TestScrubEndpointWithoutScrubber(t *testing.T) {
	ix := buildIndex(t, 2)
	defer ix.Close()
	srv := New(ix, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/scrub")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body["enabled"] != false {
		t.Fatalf("GET /scrub = %d %v, want 200 enabled=false", resp.StatusCode, body)
	}

	rr, err := http.Post(ts.URL+"/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /repair without scrubber = %d, want 503", rr.StatusCode)
	}
}

func TestScrubEndpointReportsStats(t *testing.T) {
	ix := buildIndex(t, 2)
	defer ix.Close()
	srv := New(ix, Config{})
	sc := scrub.New(ix, scrub.Config{Throttle: -1})
	srv.SetScrubber(sc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := sc.RunPass(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/scrub")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Enabled    bool         `json:"enabled"`
		Stats      scrub.Stats  `json:"stats"`
		LastReport scrub.Report `json:"last_report"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Enabled || body.Stats.Passes != 1 || !body.LastReport.Clean {
		t.Fatalf("GET /scrub = %+v, want enabled, 1 pass, clean report", body)
	}
}

// TestRepairEndpointHealsDegradedService is the HTTP half of the self-healing
// story: a bit flip degrades query responses (X-Prix-Degraded), POST /repair
// heals the index online, and the same query comes back whole with the
// degraded-result cache invalidated.
func TestRepairEndpointHealsDegradedService(t *testing.T) {
	ix := buildIndex(t, 3)
	defer ix.Close()
	srv := New(ix, Config{})
	sc := scrub.New(ix, scrub.Config{Throttle: -1})
	srv.SetScrubber(sc)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, qr, _ := doQuery(t, ts.Client(), ts.URL, `{"query": "//a/b"}`)
	if status != http.StatusOK || qr.Degraded {
		t.Fatalf("baseline query: status %d degraded=%v", status, qr.Degraded)
	}
	full := qr.Count

	// Corrupt the first record page and drop the pools so reads see it.
	f := ix.Store().BufferPool().File()
	page := pager.PageID(0)
	found := false
	for id := uint32(0); id < f.NumPages(); id++ {
		if len(ix.Store().DocsOnPage(pager.PageID(id))) > 0 {
			page, found = pager.PageID(id), true
			break
		}
	}
	if !found {
		t.Fatal("no record pages")
	}
	if err := pager.FlipBit(f, page, (pager.PageHeaderSize+7)*8); err != nil {
		t.Fatal(err)
	}
	if err := ix.ResetIOStats(); err != nil {
		t.Fatal(err)
	}
	srv.Executor().InvalidateCache()

	resp, err := ts.Client().Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query": "//a/b"}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query: status %d body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("X-Prix-Degraded") != "true" {
		t.Fatalf("degraded query missing X-Prix-Degraded header; body %s", raw)
	}
	var degraded QueryResponse
	if err := json.Unmarshal(raw, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Count >= full {
		t.Fatalf("degraded count %d not below full %d", degraded.Count, full)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || hz.Header.Get("X-Prix-Degraded") != "true" {
		t.Fatalf("degraded healthz: status %d header %q, want 200 + degraded header",
			hz.StatusCode, hz.Header.Get("X-Prix-Degraded"))
	}

	rr, err := ts.Client().Post(ts.URL+"/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(rr.Body)
		t.Fatalf("POST /repair = %d: %s", rr.StatusCode, raw)
	}
	var rep scrub.Report
	if err := json.NewDecoder(rr.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Clean || len(rep.Repairs) == 0 {
		t.Fatalf("repair report not clean or empty: %+v", rep)
	}

	status, qr, _ = doQuery(t, ts.Client(), ts.URL, `{"query": "//a/b"}`)
	if status != http.StatusOK || qr.Degraded || qr.Count != full {
		t.Fatalf("post-repair query: status %d degraded=%v count=%d want 200/false/%d",
			status, qr.Degraded, qr.Count, full)
	}
}
