package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/prix"
	"repro/internal/twig"
)

// Source is the index a service executes queries against. Both *prix.Index
// (read-only; callers must not Insert concurrently) and *prix.DynamicIndex
// (Insert-safe: queries serialize against writers) satisfy it.
type Source interface {
	Match(q *twig.Query, opts prix.MatchOptions) ([]prix.Match, *prix.QueryStats, error)
	PagesRead() uint64
	NumDocs() int
	Extended() bool
	// Quarantined lists documents the store has fenced off after detecting
	// corruption; queries skip them and responses report Degraded.
	Quarantined() []uint32
}

// inserter is the optional mutation interface of a Source. When present
// (DynamicIndex), the executor hooks it to invalidate the result cache on
// every insert.
type inserter interface {
	OnInsert(fn func())
}

// hotSource is the optional hot-tier interface of a Source. Indexes opened
// with a HotBudget (prix.Index, prix.DynamicIndex, compact.Root) expose
// their compressed-tier residency for /stats and /metrics.
type hotSource interface {
	HotStats() prix.HotStats
}

// versionSource is the optional MVCC interface of a Source. Versioned
// indexes (prix.Index, prix.DynamicIndex, compact.Root) report their
// version counter and tombstone census for /stats and /metrics.
type versionSource interface {
	VersionStats() prix.VersionStats
}

// epochSource is the optional topology interface of a Source. A
// scatter-gather coordinator (internal/shard) exposes its placement epoch;
// the executor folds it into every cache key so results computed under one
// document→shard placement can never be served under another (e.g. after
// the serving tier is pointed at a resharded layout).
type epochSource interface {
	TopologyEpoch() uint64
}

// QueryOptions are the per-request execution knobs exposed by the service.
type QueryOptions struct {
	// Unordered finds unordered twig matches (§5.7).
	Unordered bool
	// DisableMaxGap turns off Theorem 4 pruning.
	DisableMaxGap bool
	// Parallelism caps the workers the engine's pipelined executor uses for
	// this query (prix.MatchOptions.Parallelism): 0 means GOMAXPROCS, 1 the
	// serial path. It is deliberately NOT part of the result-cache key —
	// results are byte-identical at every setting, so requests differing
	// only in Parallelism share cache entries and singleflight leaders.
	Parallelism int
	// Trace, when non-nil, collects a span tree of the execution. Like
	// Parallelism it is NOT part of the cache key: tracing never changes the
	// result, so traced requests share cache entries with untraced ones —
	// which also means a cache hit (or a singleflight follower) comes back
	// with the trace unfilled. Callers must treat those traces as absent.
	Trace *obs.Trace
	// AsOf answers the query at a historical version (0 = latest); see
	// prix.MatchOptions.AsOf. Part of the cache key — different versions
	// see different documents.
	AsOf uint64
}

// key renders the options' contribution to the cache key.
func (o QueryOptions) key() string {
	b := [2]byte{'-', '-'}
	if o.Unordered {
		b[0] = 'u'
	}
	if o.DisableMaxGap {
		b[1] = 'g'
	}
	if o.AsOf != 0 {
		return string(b[:]) + "@" + strconv.FormatUint(o.AsOf, 16)
	}
	return string(b[:])
}

// Result is one executed query.
type Result struct {
	// Matches are the twig occurrences. The slice may be shared with the
	// cache and other requests: treat it as immutable.
	Matches []prix.Match
	// Stats is the engine-level accounting of the execution that produced
	// the matches (zero PagesRead and Elapsed on cache hits).
	Stats prix.QueryStats
	// Cached reports the result came from the cache.
	Cached bool
	// Shared reports the result was computed by a concurrent identical
	// request (singleflight).
	Shared bool
}

// Executor runs parsed queries against a Source through the result cache
// and the singleflight collapse. It is the single execution path shared by
// the HTTP service, cmd/prixquery and the serving benchmark, so every
// entry point observes the same semantics.
type Executor struct {
	src     Source
	cache   *Cache
	metrics *Metrics
	flight  flightGroup
	epochs  epochSource // non-nil when the source carries a topology/epoch
}

// NewExecutor wires an executor. capacity < 1 disables the result cache;
// metrics may be nil (a private registry is created).
func NewExecutor(src Source, cacheCapacity, cacheShards int, m *Metrics) *Executor {
	if m == nil {
		m = NewMetrics()
	}
	e := &Executor{src: src, cache: NewCache(cacheCapacity, cacheShards), metrics: m}
	if es, ok := src.(epochSource); ok {
		e.epochs = es
	}
	if di, ok := src.(inserter); ok && e.cache != nil {
		// Mutable index: every insert invalidates all cached results.
		// Coarse, but inserts are rare relative to queries in the serving
		// shape this repo targets; a finer scheme would need per-symbol
		// dependency tracking.
		di.OnInsert(e.cache.Flush)
	}
	return e
}

// Source returns the executor's index.
func (e *Executor) Source() Source { return e.src }

// Metrics returns the registry the executor reports into.
func (e *Executor) Metrics() *Metrics { return e.metrics }

// CacheLen returns the number of cached results.
func (e *Executor) CacheLen() int { return e.cache.Len() }

// InvalidateCache drops every cached result.
func (e *Executor) InvalidateCache() { e.cache.Flush() }

// Execute runs one parsed query. The context bounds execution: its
// cancellation is observed between the engine's B+-tree range queries.
func (e *Executor) Execute(ctx context.Context, q *twig.Query, qo QueryOptions) (*Result, error) {
	key := q.String() + "\x00" + qo.key()
	if e.epochs != nil {
		// Read the epoch per query, not at construction: a compaction swap
		// (or a reshard behind a live coordinator) bumps it mid-flight, and
		// every key minted after the bump misses the old epoch's entries.
		key += "\x00" + strconv.FormatUint(e.epochs.TopologyEpoch(), 16)
	}
	if ent, ok := e.cache.Get(key); ok {
		e.metrics.CacheHits.Inc()
		return &Result{Matches: ent.matches, Stats: ent.stats, Cached: true}, nil
	}
	e.metrics.CacheMisses.Inc()
	ent, err, shared := e.flight.Do(key, func() (*cached, error) {
		return e.run(ctx, q, qo, key)
	})
	if shared {
		e.metrics.FlightShared.Inc()
		if isContextErr(err) && ctx.Err() == nil {
			// The leader died of its own deadline/cancellation but this
			// follower is still live: retry once, alone.
			ent, err = e.run(ctx, q, qo, key)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Result{Matches: ent.matches, Stats: ent.stats, Shared: shared}, nil
}

// transientRetryBackoff is how long the executor waits before its single
// retry of a transiently failed match (an I/O hiccup, not corruption).
const transientRetryBackoff = 25 * time.Millisecond

// run performs the actual index match and fills the cache on success.
// Transient read faults get exactly one retry after a short backoff —
// bounded so an unhealthy disk degrades to fast errors, not a retry storm.
func (e *Executor) run(ctx context.Context, q *twig.Query, qo QueryOptions, key string) (*cached, error) {
	mo := prix.MatchOptions{
		WarmCache:     true, // shared pools: queries keep each other's pages hot
		Unordered:     qo.Unordered,
		DisableMaxGap: qo.DisableMaxGap,
		Parallelism:   qo.Parallelism,
		Trace:         qo.Trace,
		AsOf:          qo.AsOf,
		Ctx:           ctx,
	}
	ms, stats, err := e.src.Match(q, mo)
	if err != nil && prix.IsTransient(err) && ctx.Err() == nil {
		e.metrics.TransientRetries.Inc()
		select {
		case <-time.After(transientRetryBackoff):
		case <-ctx.Done():
			return nil, fmt.Errorf("server: retry canceled: %w", ctx.Err())
		}
		ms, stats, err = e.src.Match(q, mo)
	}
	if err != nil {
		return nil, err
	}
	e.metrics.PagesRead.Add(stats.PagesRead)
	ent := &cached{matches: ms, stats: *stats}
	// Degraded answers (quarantined documents skipped) are deliberately not
	// cached: once the corruption is repaired, the next identical query
	// returns the full answer instead of a stale partial one.
	if !stats.Degraded {
		e.cache.Put(key, ent)
	}
	return ent, nil
}

// isContextErr reports whether err stems from context cancellation or
// deadline expiry.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ParseQuery parses the service's XPath subset, normalizing the error for
// transport boundaries.
func ParseQuery(src string) (*twig.Query, error) {
	q, err := twig.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	return q, nil
}
