package vist

import (
	"math/rand"
	"testing"

	"repro/internal/docstore"
	"repro/internal/pager"
	"repro/internal/twig"
	"repro/internal/xmltree"
)

func buildIx(t testing.TB, docs ...*xmltree.Document) *Index {
	t.Helper()
	ix, err := Build(docs, pager.NewBufferPool(pager.NewMemFile(), 256), &docstore.Dict{})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func candidates(t testing.TB, ix *Index, q string) []uint32 {
	t.Helper()
	out, _, err := ix.Match(twig.MustParse(q))
	if err != nil {
		t.Fatalf("Match(%s): %v", q, err)
	}
	return out
}

func TestFigure1bFalseAlarm(t *testing.T) {
	// The PRIX paper's Figure 1(b): Q occurs only in Doc1, but ViST's
	// subsequence matching also reports Doc2 — a false alarm we reproduce.
	doc1 := xmltree.MustFromSExpr(0, `(B (A) (D))`)
	doc2 := xmltree.MustFromSExpr(1, `(B (A (D)))`)
	ix := buildIx(t, doc1, doc2)
	got := candidates(t, ix, `//B[./A]/D`)
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want both docs (false alarm included)", got)
	}
}

func TestTrueMatchesAlwaysIncluded(t *testing.T) {
	// No false dismissals: every document with a brute-force match must be
	// a ViST candidate.
	rng := rand.New(rand.NewSource(13))
	queries := []string{
		`//a/b`, `//a//b`, `//a[./b]/c`, `//a[./b][./c]/d`, `//a/b/c`,
		`//a[.//b]//c`, `//a/*/b`, `//a[./b="v1"]/c`, `/a/b`, `//d//d`,
	}
	for trial := 0; trial < 20; trial++ {
		var docs []*xmltree.Document
		for d := 0; d < 6; d++ {
			docs = append(docs, xmltree.RandomDocument(rng, d, xmltree.RandomConfig{
				Nodes:     3 + rng.Intn(20),
				Alphabet:  []string{"a", "b", "c", "d"},
				MaxFanout: 4,
				ValueProb: 0.3,
				Values:    []string{"v1", "v2"},
			}))
		}
		ix := buildIx(t, docs...)
		for _, qs := range queries {
			q := twig.MustParse(qs)
			want := map[uint32]bool{}
			for _, d := range docs {
				if len(twig.MatchBruteForce(q, d)) > 0 {
					want[uint32(d.ID)] = true
				}
			}
			got := map[uint32]bool{}
			for _, d := range candidates(t, ix, qs) {
				got[d] = true
			}
			for d := range want {
				if !got[d] {
					t.Fatalf("trial %d query %s: doc %d dismissed (doc: %s)",
						trial, qs, d, docs[d])
				}
			}
		}
	}
}

func TestExactAnchoredQueries(t *testing.T) {
	docs := []*xmltree.Document{
		xmltree.MustFromSExpr(0, `(a (b (c)))`),
		xmltree.MustFromSExpr(1, `(a (x (b (c))))`),
		xmltree.MustFromSExpr(2, `(b (c))`),
	}
	ix := buildIx(t, docs...)
	got := candidates(t, ix, `/a/b/c`)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("/a/b/c candidates = %v, want [0]", got)
	}
	got = candidates(t, ix, `//a//b/c`)
	if len(got) != 2 {
		t.Errorf("//a//b/c candidates = %v, want docs 0 and 1", got)
	}
}

func TestWildcardScansWholeSymbol(t *testing.T) {
	// Leading-// queries must examine every key of the symbol — the
	// behaviour the paper measures on TREEBANK.
	var docs []*xmltree.Document
	for i := 0; i < 50; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(S (NP (SYM)) (VP (NP (x))))`))
	}
	ix := buildIx(t, docs...)
	_, stats, err := ix.Match(twig.MustParse(`//S//NP/SYM`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeysExamined == 0 || stats.RangeQueries == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Every document shares one trie path, so candidate count is 50.
	if stats.Candidates != 50 {
		t.Errorf("candidates = %d, want 50", stats.Candidates)
	}
}

func TestAbsentLabel(t *testing.T) {
	ix := buildIx(t, xmltree.MustFromSExpr(0, `(a (b))`))
	got := candidates(t, ix, `//zz/b`)
	if len(got) != 0 {
		t.Errorf("candidates = %v", got)
	}
}

func TestValueNamespacing(t *testing.T) {
	ix := buildIx(t, xmltree.MustFromSExpr(0, `(a (b "b"))`))
	// Element b has a value child "b": value predicate must match, element
	// chain b/b must not.
	if got := candidates(t, ix, `//a[./b="b"]`); len(got) != 1 {
		t.Errorf("value query candidates = %v", got)
	}
	if got := candidates(t, ix, `//a/b/b`); len(got) != 0 {
		t.Errorf("element chain matched a value: %v", got)
	}
}

func TestStatsPopulated(t *testing.T) {
	var docs []*xmltree.Document
	for i := 0; i < 30; i++ {
		docs = append(docs, xmltree.MustFromSExpr(i, `(a (b (c)))`))
	}
	ix := buildIx(t, docs...)
	_, stats, err := ix.Match(twig.MustParse(`//a/b/c`))
	if err != nil {
		t.Fatal(err)
	}
	if stats.PagesRead == 0 || stats.Elapsed <= 0 || stats.Candidates != 30 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPersistence(t *testing.T) {
	path := t.TempDir() + "/vist.db"
	file, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	docs := []*xmltree.Document{
		xmltree.MustFromSExpr(0, `(B (A) (D))`),
		xmltree.MustFromSExpr(1, `(B (A (D)))`),
	}
	if _, err := Build(docs, pager.NewBufferPool(file, 32), &docstore.Dict{}); err != nil {
		t.Fatal(err)
	}
	file.Close()

	file2, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file2.Close()
	ix, err := Open(pager.NewBufferPool(file2, 32))
	if err != nil {
		t.Fatal(err)
	}
	got := candidates(t, ix, `//B[./A]/D`)
	if len(got) != 2 {
		t.Errorf("candidates after reopen = %v, want both docs", got)
	}
}
