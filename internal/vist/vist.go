// Package vist implements the ViST baseline (Wang, Park, Fan, Yu — SIGMOD
// 2003) as characterised by the PRIX paper's §2 and §6: XML documents are
// transformed top-down into structure-encoded sequences — preorder lists of
// (symbol, prefix) pairs where the prefix is the root-to-parent label path —
// the sequences are stored in a virtual trie, and the (symbol, prefix)
// pairs are kept directly in a D-Ancestorship B+-tree. Twig queries run as
// subsequence matching over the trie ranges with prefix-pattern filtering.
//
// Two behaviours of ViST that the PRIX paper calls out are reproduced
// faithfully:
//
//   - prefix matching allows trailing slack ("prefix-of" semantics), so the
//     Figure 1(b) query finds a false alarm in Doc2, and result candidates
//     can be supersets of the true matches;
//   - queries with a wildcard anywhere on the root path must examine every
//     (symbol, prefix) key of the symbol (the paper's "every key with S as
//     its symbol was matched"), which is what makes ViST expensive on
//     recursive datasets such as TREEBANK.
package vist

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/btree"
	"repro/internal/docstore"
	"repro/internal/pager"
	"repro/internal/twig"
	"repro/internal/vtrie"
	"repro/internal/xmltree"
)

// Index is a built ViST index.
type Index struct {
	forest *btree.Forest
	dict   *docstore.Dict
	danc   *btree.Tree // D-Ancestorship: (symbol, prefix, Left) -> Right
	docid  *btree.Tree // Left of sequence end -> docID
}

// Stats reports the work one query performed.
type Stats struct {
	// RangeQueries counts B+-tree scans issued.
	RangeQueries int
	// KeysExamined counts D-Ancestorship entries touched (the paper's
	// "unique (symbol, prefix) keys matched" is bounded by this).
	KeysExamined int
	// Candidates counts candidate documents reported (including false
	// alarms, which ViST does not filter).
	Candidates int
	// PagesRead is the physical pages read during the query.
	PagesRead uint64
	// Elapsed is wall-clock query time.
	Elapsed time.Duration
}

// Build constructs the index over a document collection.
func Build(docs []*xmltree.Document, bp *pager.BufferPool, dict *docstore.Dict) (*Index, error) {
	forest, err := btree.Open(bp)
	if err != nil {
		return nil, err
	}
	ix := &Index{forest: forest, dict: dict}
	if ix.danc, err = forest.Tree("dancestor"); err != nil {
		return nil, err
	}
	if ix.docid, err = forest.Tree("docid"); err != nil {
		return nil, err
	}
	// Composite (symbol, prefix) elements interned in their own space so
	// the trie builder can share paths.
	compDict := map[string]vtrie.Symbol{}
	type compMeta struct {
		label  vtrie.Symbol
		prefix []vtrie.Symbol
	}
	var metas []compMeta
	builder := vtrie.NewBuilder()
	for id, doc := range docs {
		if err := doc.Validate(); err != nil {
			return nil, fmt.Errorf("vist: document %d: %w", id, err)
		}
		seq := make([]vtrie.Symbol, 0, doc.Size())
		var prefix []vtrie.Symbol
		var walk func(n *xmltree.Node)
		walk = func(n *xmltree.Node) {
			label := symbolFor(dict, n)
			key := compKey(label, prefix)
			comp, ok := compDict[key]
			if !ok {
				comp = vtrie.Symbol(len(metas))
				compDict[key] = comp
				metas = append(metas, compMeta{label: label, prefix: append([]vtrie.Symbol(nil), prefix...)})
			}
			seq = append(seq, comp)
			prefix = append(prefix, label)
			for _, c := range n.Children {
				walk(c)
			}
			prefix = prefix[:len(prefix)-1]
		}
		walk(doc.Root)
		if err := builder.Add(seq, uint32(id)); err != nil {
			return nil, err
		}
	}
	builder.Label()
	if err := builder.Validate(); err != nil {
		return nil, err
	}
	err = builder.Emit(func(p vtrie.Posting, ds []uint32) error {
		m := metas[p.Symbol]
		key := dancKey(m.label, m.prefix, p.Left)
		var val [8]byte
		binary.BigEndian.PutUint64(val[:], p.Right)
		if err := ix.danc.Insert(key, val[:]); err != nil {
			return err
		}
		for _, d := range ds {
			var dv [4]byte
			binary.LittleEndian.PutUint32(dv[:], d)
			if err := ix.docid.Insert(btree.KeyUint64(p.Left), dv[:]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Persist the dictionary alongside the trees so Open can rebuild it.
	dt, err := forest.Tree("dict")
	if err != nil {
		return nil, err
	}
	for i, name := range dict.Names() {
		if err := dt.Insert(btree.KeyUint64(uint64(i)), []byte(name)); err != nil {
			return nil, err
		}
	}
	return ix, forest.Flush()
}

// Open loads an index persisted by Build over a file-backed pool.
func Open(bp *pager.BufferPool) (*Index, error) {
	forest, err := btree.Open(bp)
	if err != nil {
		return nil, err
	}
	ix := &Index{forest: forest, dict: &docstore.Dict{}}
	if ix.danc = forest.Lookup("dancestor"); ix.danc == nil {
		return nil, fmt.Errorf("vist: missing D-Ancestorship tree")
	}
	if ix.docid = forest.Lookup("docid"); ix.docid == nil {
		return nil, fmt.Errorf("vist: missing docid tree")
	}
	dt := forest.Lookup("dict")
	if dt == nil {
		return nil, fmt.Errorf("vist: missing dictionary tree")
	}
	next := uint64(0)
	var scanErr error
	err = dt.Scan(nil, nil, true, true, func(k, v []byte) bool {
		if btree.Uint64Key(k) != next {
			scanErr = fmt.Errorf("vist: dictionary has a gap at symbol %d", next)
			return false
		}
		ix.dict.Intern(string(v))
		next++
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return ix, nil
}

func symbolFor(dict *docstore.Dict, n *xmltree.Node) vtrie.Symbol {
	if n.IsValue {
		return dict.Intern("\x00" + n.Label)
	}
	return dict.Intern(n.Label)
}

// compKey renders (label, prefix) for the build-time interner.
func compKey(label vtrie.Symbol, prefix []vtrie.Symbol) string {
	b := make([]byte, 0, 4*(len(prefix)+1))
	b = appendSym(b, label)
	for _, s := range prefix {
		b = appendSym(b, s)
	}
	return string(b)
}

func appendSym(b []byte, s vtrie.Symbol) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(s))
	return append(b, tmp[:]...)
}

// dancKey is the D-Ancestorship key: symbol(4) | prefixLen(2) | prefix
// (4 bytes per ancestor symbol) | Left(8), all big-endian so same-symbol
// keys cluster and Left order is preserved within one prefix.
func dancKey(label vtrie.Symbol, prefix []vtrie.Symbol, left uint64) []byte {
	b := make([]byte, 0, 4+2+4*len(prefix)+8)
	b = appendSym(b, label)
	var l2 [2]byte
	binary.BigEndian.PutUint16(l2[:], uint16(4*len(prefix)))
	b = append(b, l2[:]...)
	for _, s := range prefix {
		b = appendSym(b, s)
	}
	b = append(b, btree.KeyUint64(left)...)
	return b
}

// parseDancKey splits a stored key back into (prefix symbols, left).
func parseDancKey(k []byte) (prefix []vtrie.Symbol, left uint64, err error) {
	if len(k) < 14 {
		return nil, 0, fmt.Errorf("vist: short D-Ancestorship key")
	}
	plen := int(binary.BigEndian.Uint16(k[4:6]))
	if len(k) != 4+2+plen+8 || plen%4 != 0 {
		return nil, 0, fmt.Errorf("vist: malformed D-Ancestorship key")
	}
	prefix = make([]vtrie.Symbol, plen/4)
	for i := range prefix {
		prefix[i] = vtrie.Symbol(binary.BigEndian.Uint32(k[6+4*i : 10+4*i]))
	}
	left = binary.BigEndian.Uint64(k[len(k)-8:])
	return prefix, left, nil
}

// qstep is one query node prepared for matching: its label symbol, the
// prefix pattern along its root path, and whether the pattern is exact
// (anchored with child-only edges), allowing a narrow key-range scan.
type qstep struct {
	label vtrie.Symbol
	// pattern steps top-down: gaps between consecutive ancestor labels.
	pattern []patStep
	// rootEdge bounds the depth of the first pattern label.
	rootEdge twig.Edge
	// minTrail is the minimum number of hops between the last ancestor
	// label and the node itself (trailing slack beyond it is allowed —
	// ViST's "prefix-of" semantics, the false-alarm source).
	minTrail int
	exact    bool
	// exactPrefix is the literal prefix when exact.
	exactPrefix []vtrie.Symbol
}

type patStep struct {
	label    vtrie.Symbol
	min, max int // hops from the previous pattern label (or root anchor)
}

// compile turns the query into preorder steps. A nil slice with no error
// means a query label does not occur in the collection.
func (ix *Index) compile(q *twig.Query) ([]qstep, error) {
	type anc struct {
		node *twig.Node
		edge twig.Edge
	}
	var steps []qstep
	ok := true
	var walk func(n *twig.Node, edge twig.Edge, ancs []anc)
	walk = func(n *twig.Node, edge twig.Edge, ancs []anc) {
		label, found := lookup(ix.dict, n)
		if !found {
			ok = false
			return
		}
		st := qstep{label: label, rootEdge: q.RootEdge}
		if n != q.Root {
			st.minTrail = edge.Min
		}
		// The narrow key-range scan applies only to fully anchored,
		// child-edge-only root paths; everything else (in particular
		// every leading-// query, i.e. all of the paper's) examines the
		// symbol's whole key range, as ViST does.
		exact := q.RootEdge.Exact() && (n == q.Root || edge.Exact())
		for _, a := range ancs {
			sym, f := lookup(ix.dict, a.node)
			if !f {
				ok = false
				return
			}
			st.pattern = append(st.pattern, patStep{label: sym, min: a.edge.Min, max: a.edge.Max})
			if !a.edge.Exact() {
				exact = false
			}
		}
		st.exact = exact
		if st.exact {
			for _, a := range ancs {
				sym, _ := lookup(ix.dict, a.node)
				st.exactPrefix = append(st.exactPrefix, sym)
			}
		}
		steps = append(steps, st)
		nextAncs := append(append([]anc(nil), ancs...), anc{node: n, edge: edge})
		for _, c := range n.Children {
			walk(c, c.Edge, nextAncs)
		}
	}
	walk(q.Root, q.RootEdge, nil)
	if !ok {
		return nil, nil
	}
	return steps, nil
}

func lookup(dict *docstore.Dict, n *twig.Node) (vtrie.Symbol, bool) {
	if n.IsValue {
		return dict.Lookup("\x00" + n.Label)
	}
	return dict.Lookup(n.Label)
}

// Match returns the candidate document ids (sorted, deduplicated). ViST
// does not run PRIX-style refinement, so candidates may include false
// alarms; callers needing exact answers must verify externally.
func (ix *Index) Match(q *twig.Query) ([]uint32, *Stats, error) {
	start := time.Now()
	bp := ix.forest.BufferPool()
	if err := bp.DropAll(); err != nil {
		return nil, nil, err
	}
	bp.ResetStats()
	stats := &Stats{}
	steps, err := ix.compile(q)
	if err != nil {
		return nil, nil, err
	}
	docSet := map[uint32]bool{}
	if steps != nil {
		if err := ix.findSubsequence(steps, 0, 0, vtrie.MaxRange, stats, docSet); err != nil {
			return nil, nil, err
		}
	}
	out := make([]uint32, 0, len(docSet))
	for d := range docSet {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	stats.Candidates = len(out)
	stats.PagesRead = bp.Stats().PhysicalReads
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}

// findSubsequence performs the trie-range subsequence matching: query step
// i must match a D-Ancestorship entry whose trie position lies strictly
// inside the previous step's range.
func (ix *Index) findSubsequence(steps []qstep, i int, ql, qr uint64, stats *Stats, docSet map[uint32]bool) error {
	st := steps[i]
	type hit struct{ left, right uint64 }
	var hits []hit
	stats.RangeQueries++
	collect := func(k, v []byte) bool {
		stats.KeysExamined++
		prefix, left, err := parseDancKey(k)
		if err != nil {
			return true
		}
		if left <= ql || left > qr {
			return true
		}
		if !st.matchesPrefix(prefix) {
			return true
		}
		hits = append(hits, hit{left: left, right: binary.BigEndian.Uint64(v)})
		return true
	}
	if st.exact {
		// Narrow scan: fixed (symbol, prefix), Left within (ql, qr].
		lo := dancKey(st.label, st.exactPrefix, ql)
		hi := dancKey(st.label, st.exactPrefix, qr)
		if err := ix.danc.Scan(lo, hi, false, true, collect); err != nil {
			return err
		}
	} else {
		// Wildcard path: every key of the symbol is examined (the
		// behaviour the paper measures on TREEBANK).
		lo := appendSym(nil, st.label)
		hi := appendSym(nil, st.label+1)
		if err := ix.danc.Scan(lo, hi, true, false, collect); err != nil {
			return err
		}
	}
	for _, h := range hits {
		if i == len(steps)-1 {
			stats.RangeQueries++
			err := ix.docid.Scan(btree.KeyUint64(h.left), btree.KeyUint64(h.right), true, true,
				func(k, v []byte) bool {
					docSet[binary.LittleEndian.Uint32(v)] = true
					return true
				})
			if err != nil {
				return err
			}
		} else {
			if err := ix.findSubsequence(steps, i+1, h.left, h.right, stats, docSet); err != nil {
				return err
			}
		}
	}
	return nil
}

// matchesPrefix applies the prefix pattern with ViST's trailing-slack
// semantics: the pattern must embed into the data prefix respecting the
// per-edge hop bounds, the root anchor, and a minimum (but not maximum)
// trailing distance to the node itself.
func (st *qstep) matchesPrefix(prefix []vtrie.Symbol) bool {
	n := len(prefix)
	if len(st.pattern) == 0 {
		// Query root itself: only the depth anchor applies. Depth of the
		// node is len(prefix)+1.
		depth := n + 1
		if depth < st.rootEdge.Min {
			return false
		}
		if st.rootEdge.Max != twig.Unbounded && depth > st.rootEdge.Max {
			return false
		}
		return true
	}
	// Backtracking placement of pattern labels at increasing indices.
	var rec func(pi, pos int) bool
	rec = func(pi, pos int) bool {
		if pi == len(st.pattern) {
			// pos is the index just past the last matched label; the
			// node itself sits at depth n+1, so the trailing hop count
			// is n - (pos - 1). Only the minimum is enforced.
			return n-(pos-1) >= st.minTrail
		}
		p := st.pattern[pi]
		var lo, hi int
		if pi == 0 {
			lo = st.rootEdge.Min - 1
			hi = n - 1
			if st.rootEdge.Max != twig.Unbounded {
				hi = st.rootEdge.Max - 1
			}
		} else {
			lo = pos - 1 + p.min
			hi = n - 1
			if p.max != twig.Unbounded {
				hi = pos - 1 + p.max
			}
		}
		if hi > n-1 {
			hi = n - 1
		}
		for idx := lo; idx <= hi; idx++ {
			if idx < 0 || idx >= n {
				continue
			}
			if prefix[idx] != p.label {
				continue
			}
			if rec(pi+1, idx+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}
