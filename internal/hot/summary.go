package hot

import (
	"math/bits"

	"repro/internal/docstore"
	"repro/internal/vtrie"
)

// Summary is a succinct encoding of one document's refinement data: the
// tree shape as 2n balanced-parentheses bits (children visited in ascending
// postorder, so the DFS re-derives the original numbering) and one packed
// label per node. NPS, LPS and the leaf list all decode from those two
// vectors, replacing the docstore record fetch for hot-resident documents.
//
// NewSummary round-trips the encoding against the source record and admits
// nothing on any mismatch, so a decoded Summary is behaviourally identical
// to the record it replaced — the tier can never change query results.
type Summary struct {
	docID  uint32
	n      int32
	bp     []uint64 // 2n shape bits, MSB-first within a word
	packed []uint64 // n labels at width bits each
	width  uint8
}

// DocID returns the document the summary encodes.
func (s *Summary) DocID() uint32 { return s.docID }

// SizeBytes approximates the summary's memory footprint.
func (s *Summary) SizeBytes() int { return len(s.bp)*8 + len(s.packed)*8 + 48 }

// NewSummary encodes rec, returning nil when the record is not expressible
// (structural damage) or when the decoded image differs from the source in
// any field — the caller then simply keeps reading the record from the
// store.
func NewSummary(rec *docstore.Record) *Summary {
	if rec == nil {
		return nil
	}
	n := int(rec.NumNodes)
	if n < 1 || len(rec.NPS) != n-1 || len(rec.LPS) != n-1 {
		return nil
	}
	// parent[i] is the postorder number of node i's parent; postorder
	// numbers a parent after its children, so parent[i] > i must hold.
	parent := make([]int32, n+1)
	children := make([][]int32, n+1)
	for i := 1; i < n; i++ {
		p := rec.NPS[i-1]
		if p <= int32(i) || p > int32(n) {
			return nil
		}
		parent[i] = p
		children[p] = append(children[p], int32(i))
	}
	// One label per node: internal nodes from the LPS (their label appears
	// wherever they act as a parent), leaves from the leaf list. Conflicts
	// mean a damaged record; unlabeled nodes keep 0 and the round-trip
	// check below decides whether that is faithful.
	labels := make([]vtrie.Symbol, n+1)
	labeled := make([]bool, n+1)
	setLabel := func(post int32, sym vtrie.Symbol) bool {
		if post < 1 || post > int32(n) {
			return false
		}
		if labeled[post] && labels[post] != sym {
			return false
		}
		labels[post] = sym
		labeled[post] = true
		return true
	}
	for i := 1; i < n; i++ {
		if !setLabel(rec.NPS[i-1], rec.LPS[i-1]) {
			return nil
		}
	}
	for _, l := range rec.Leaves {
		if !setLabel(l.Post, l.Sym) {
			return nil
		}
	}
	var maxSym vtrie.Symbol
	for post := 1; post <= n; post++ {
		if labels[post] > maxSym {
			maxSym = labels[post]
		}
	}
	width := uint8(bits.Len32(uint32(maxSym)))
	if width == 0 {
		width = 1
	}
	s := &Summary{
		docID:  rec.DocID,
		n:      rec.NumNodes,
		bp:     make([]uint64, (2*n+63)/64),
		packed: make([]uint64, (n*int(width)+63)/64),
		width:  width,
	}
	// Balanced parentheses by iterative DFS from the root (node n), children
	// ascending: '(' on entry, ')' on exit. The DFS must visit exactly n
	// nodes or the parent array was not a tree.
	bit := 0
	setBit := func(open bool) {
		if open {
			s.bp[bit/64] |= 1 << uint(63-bit%64)
		}
		bit++
	}
	type frame struct {
		node int32
		next int
	}
	stack := []frame{{node: int32(n)}}
	setBit(true)
	visited := 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := children[f.node]
		if f.next < len(kids) {
			c := kids[f.next]
			f.next++
			setBit(true)
			visited++
			stack = append(stack, frame{node: c})
			continue
		}
		setBit(false)
		stack = stack[:len(stack)-1]
	}
	if visited != n || bit != 2*n {
		return nil
	}
	for post := 1; post <= n; post++ {
		s.putLabel(post, labels[post])
	}
	if !s.matches(rec) {
		return nil
	}
	return s
}

// putLabel packs the label of node post (1-based) into the label vector.
func (s *Summary) putLabel(post int, sym vtrie.Symbol) {
	w := int(s.width)
	start := (post - 1) * w
	for b := 0; b < w; b++ {
		if sym&(1<<uint(w-1-b)) != 0 {
			i := start + b
			s.packed[i/64] |= 1 << uint(63-i%64)
		}
	}
}

// label unpacks the label of node post (1-based).
func (s *Summary) label(post int) vtrie.Symbol {
	w := int(s.width)
	start := (post - 1) * w
	var sym vtrie.Symbol
	for b := 0; b < w; b++ {
		i := start + b
		sym <<= 1
		if s.packed[i/64]&(1<<uint(63-i%64)) != 0 {
			sym |= 1
		}
	}
	return sym
}

// Record decodes the summary back into a fresh docstore record. The result
// is freshly allocated on every call; callers may treat it exactly like a
// record read from the store.
func (s *Summary) Record() *docstore.Record {
	n := int(s.n)
	// Walk the parentheses: preorder ids index the temporary arrays, the
	// close bit assigns postorder numbers, and the open-time stack gives
	// each node its parent's preorder id.
	parentPre := make([]int32, n)
	postOf := make([]int32, n)
	preOf := make([]int32, n+1)
	kids := make([]int32, n)
	stack := make([]int32, 0, 64)
	pre := int32(0)
	post := int32(0)
	for bit := 0; bit < 2*n; bit++ {
		if s.bp[bit/64]&(1<<uint(63-bit%64)) != 0 {
			id := pre
			pre++
			if len(stack) > 0 {
				parentPre[id] = stack[len(stack)-1]
				kids[stack[len(stack)-1]]++
			} else {
				parentPre[id] = -1
			}
			stack = append(stack, id)
		} else {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			post++
			postOf[id] = post
			preOf[post] = id
		}
	}
	rec := &docstore.Record{
		DocID:    s.docID,
		NumNodes: s.n,
		NPS:      make([]int32, n-1),
		LPS:      make([]vtrie.Symbol, n-1),
	}
	for p := 1; p < n; p++ {
		pp := postOf[parentPre[preOf[p]]]
		rec.NPS[p-1] = pp
		rec.LPS[p-1] = s.label(int(pp))
	}
	for p := 1; p <= n; p++ {
		if kids[preOf[p]] == 0 {
			rec.Leaves = append(rec.Leaves, docstore.Leaf{Post: int32(p), Sym: s.label(p)})
		}
	}
	return rec
}

// matches reports whether the decoded image equals rec field by field (nil
// and empty slices compare equal).
func (s *Summary) matches(rec *docstore.Record) bool {
	got := s.Record()
	if got.DocID != rec.DocID || got.NumNodes != rec.NumNodes ||
		len(got.NPS) != len(rec.NPS) || len(got.LPS) != len(rec.LPS) ||
		len(got.Leaves) != len(rec.Leaves) {
		return false
	}
	for i := range got.NPS {
		if got.NPS[i] != rec.NPS[i] || got.LPS[i] != rec.LPS[i] {
			return false
		}
	}
	for i := range got.Leaves {
		if got.Leaves[i] != rec.Leaves[i] {
			return false
		}
	}
	return true
}
