package hot

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Sized is anything the tier can hold; all three hot structures satisfy it.
type Sized interface{ SizeBytes() int }

// Tier is the budgeted cache: posting lists, docid lists and document
// summaries share one byte budget with LRU demotion. All methods are safe
// for concurrent use; readers under the engine's query locks and writers
// under its write locks interleave freely because the tier's own mutex
// orders every map/list touch.
type Tier struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	items  map[string]*list.Element // value: *tierEntry
	lru    *list.List               // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type tierEntry struct {
	key  string
	size int64
	val  Sized
}

// NewTier returns a tier with the given byte budget (> 0).
func NewTier(budget int64) *Tier {
	return &Tier{budget: budget, items: map[string]*list.Element{}, lru: list.New()}
}

// Budget returns the configured byte cap.
func (t *Tier) Budget() int64 { return t.budget }

// Bytes returns the bytes currently resident.
func (t *Tier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// Len returns the number of resident items.
func (t *Tier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.items)
}

// Get returns the item under key, marking it most recently used.
func (t *Tier) Get(key string) (Sized, bool) {
	t.mu.Lock()
	el, ok := t.items[key]
	if ok {
		t.lru.MoveToFront(el)
	}
	t.mu.Unlock()
	if ok {
		t.hits.Add(1)
		return el.Value.(*tierEntry).val, true
	}
	t.misses.Add(1)
	return nil, false
}

// Add admits v under key, evicting least-recently-used items until it
// fits. An item larger than the whole budget is rejected. A key already
// resident is replaced.
func (t *Tier) Add(key string, v Sized) bool { return t.add(key, v, true) }

// TryAdd admits v only if it fits without evicting anything. Preload uses
// it so filling the tier in priority order stops at the budget instead of
// demoting what was just loaded.
func (t *Tier) TryAdd(key string, v Sized) bool { return t.add(key, v, false) }

func (t *Tier) add(key string, v Sized, evict bool) bool {
	size := int64(v.SizeBytes())
	if size > t.budget {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		t.bytes -= el.Value.(*tierEntry).size
		t.lru.Remove(el)
		delete(t.items, key)
	}
	if t.bytes+size > t.budget && !evict {
		return false
	}
	for t.bytes+size > t.budget {
		back := t.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*tierEntry)
		t.bytes -= e.size
		t.lru.Remove(back)
		delete(t.items, e.key)
		t.evictions.Add(1)
	}
	t.items[key] = t.lru.PushFront(&tierEntry{key: key, size: size, val: v})
	t.bytes += size
	return true
}

// Invalidate drops the item under key, if resident.
func (t *Tier) Invalidate(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		t.bytes -= el.Value.(*tierEntry).size
		t.lru.Remove(el)
		delete(t.items, key)
	}
}

// InvalidateAll drops everything (forest rebuild, epoch swap).
func (t *Tier) InvalidateAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.items = map[string]*list.Element{}
	t.lru.Init()
	t.bytes = 0
}

// Stats is a point-in-time snapshot of the tier's counters.
type Stats struct {
	Budget    int64  `json:"budget_bytes"`
	Bytes     int64  `json:"bytes"`
	Items     int    `json:"items"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the tier.
func (t *Tier) Stats() Stats {
	t.mu.Lock()
	bytes, items := t.bytes, len(t.items)
	t.mu.Unlock()
	return Stats{
		Budget:    t.budget,
		Bytes:     bytes,
		Items:     items,
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Evictions: t.evictions.Load(),
	}
}
