// Package hot is the compressed in-memory hot tier: delta+varint posting
// lists mirroring the Trie-Symbol and Docid B+-trees, and succinct
// per-document structure summaries (balanced-parentheses shape plus packed
// labels) mirroring docstore records. Both shrink the common read path —
// the Algorithm 1 descent and the Algorithm 2 fetch — to memory-resident
// decoding, so hot queries touch no pager pages for those stages. The tier
// is strictly a cache: every structure is built from (and verified against)
// the authoritative B+-tree/docstore image, evicted LRU under a byte
// budget, and invalidated by writers, so results stay byte-identical to
// the uncompressed path.
package hot

import (
	"encoding/binary"
	"sort"
)

// blockEntries is how many entries share one block of a compressed list;
// the block index holds one raw first-key per block, bounding the sequential
// decode a range scan must do to reach its lower bound.
const blockEntries = 128

// blockRef locates one block: the raw LeftPos of its first entry and its
// byte offset into the data buffer.
type blockRef struct {
	firstLeft uint64
	off       uint32
}

// startBlock returns the index of the block a scan with lower bound lo must
// start decoding at. Equal keys can run across block boundaries, so the
// scan starts one block before the first block whose first key reaches lo.
func startBlock(refs []blockRef, lo uint64) int {
	i := sort.Search(len(refs), func(b int) bool { return refs[b].firstLeft >= lo })
	if i > 0 {
		i--
	}
	return i
}

// inRange applies B+-tree Scan bound semantics to one key.
func inRange(k, lo, hi uint64, loIncl, hiIncl bool) (ok, past bool) {
	if k > hi || (k == hi && !hiIncl) {
		return false, true
	}
	if k < lo || (k == lo && !loIncl) {
		return false, false
	}
	return true, false
}

// Postings is an immutable compressed Trie-Symbol posting list: entries
// (Left, Right, Level) in exactly the order the source B+-tree's Scan
// visits them (ascending Left, duplicates in insertion order). Entries are
// delta+varint coded per block: Left as a delta from its predecessor,
// Right as its span above Left, Level raw.
type Postings struct {
	data []byte
	refs []blockRef
	n    int
}

// PostingsBuilder accumulates entries in scan order.
type PostingsBuilder struct {
	data     []byte
	refs     []blockRef
	n        int
	prevLeft uint64
}

// NewPostingsBuilder returns an empty builder.
func NewPostingsBuilder() *PostingsBuilder { return &PostingsBuilder{} }

// Add appends one posting. Calls must arrive in B+-tree Scan order.
func (b *PostingsBuilder) Add(left, right uint64, level uint32) {
	if b.n%blockEntries == 0 {
		b.refs = append(b.refs, blockRef{firstLeft: left, off: uint32(len(b.data))})
		b.prevLeft = left
	}
	b.data = binary.AppendUvarint(b.data, left-b.prevLeft)
	b.data = binary.AppendUvarint(b.data, right-left)
	b.data = binary.AppendUvarint(b.data, uint64(level))
	b.prevLeft = left
	b.n++
}

// Len returns the number of entries added so far.
func (b *PostingsBuilder) Len() int { return b.n }

// Build freezes the builder into an immutable list.
func (b *PostingsBuilder) Build() *Postings {
	return &Postings{data: b.data, refs: b.refs, n: b.n}
}

// Len returns the number of entries.
func (p *Postings) Len() int { return p.n }

// SizeBytes approximates the list's memory footprint.
func (p *Postings) SizeBytes() int { return len(p.data) + len(p.refs)*12 + 48 }

// Scan visits entries with Left in the given bounds, in list order,
// mirroring btree.Tree.Scan semantics. fn returning false stops the scan.
func (p *Postings) Scan(lo, hi uint64, loIncl, hiIncl bool, fn func(left, right uint64, level uint32) bool) {
	if p.n == 0 {
		return
	}
	bi := startBlock(p.refs, lo)
	off := int(p.refs[bi].off)
	left := p.refs[bi].firstLeft
	first := true
	for i := bi * blockEntries; i < p.n; i++ {
		if i%blockEntries == 0 && !first {
			left = p.refs[i/blockEntries].firstLeft
		}
		first = false
		d, w := binary.Uvarint(p.data[off:])
		off += w
		span, w := binary.Uvarint(p.data[off:])
		off += w
		lvl, w := binary.Uvarint(p.data[off:])
		off += w
		left += d
		ok, past := inRange(left, lo, hi, loIncl, hiIncl)
		if past {
			return
		}
		if ok && !fn(left, left+span, uint32(lvl)) {
			return
		}
	}
}

// DocIDs is an immutable compressed Docid-index list: (Left, DocID) pairs
// in B+-tree Scan order.
type DocIDs struct {
	data []byte
	refs []blockRef
	n    int
}

// DocIDsBuilder accumulates docid entries in scan order.
type DocIDsBuilder struct {
	data     []byte
	refs     []blockRef
	n        int
	prevLeft uint64
}

// NewDocIDsBuilder returns an empty builder.
func NewDocIDsBuilder() *DocIDsBuilder { return &DocIDsBuilder{} }

// Add appends one (Left, DocID) entry in B+-tree Scan order.
func (b *DocIDsBuilder) Add(left uint64, docID uint32) {
	if b.n%blockEntries == 0 {
		b.refs = append(b.refs, blockRef{firstLeft: left, off: uint32(len(b.data))})
		b.prevLeft = left
	}
	b.data = binary.AppendUvarint(b.data, left-b.prevLeft)
	b.data = binary.AppendUvarint(b.data, uint64(docID))
	b.prevLeft = left
	b.n++
}

// Len returns the number of entries added so far.
func (b *DocIDsBuilder) Len() int { return b.n }

// Build freezes the builder into an immutable list.
func (b *DocIDsBuilder) Build() *DocIDs {
	return &DocIDs{data: b.data, refs: b.refs, n: b.n}
}

// Len returns the number of entries.
func (d *DocIDs) Len() int { return d.n }

// SizeBytes approximates the list's memory footprint.
func (d *DocIDs) SizeBytes() int { return len(d.data) + len(d.refs)*12 + 48 }

// Scan visits entries with Left in the given bounds, in list order.
func (d *DocIDs) Scan(lo, hi uint64, loIncl, hiIncl bool, fn func(left uint64, docID uint32) bool) {
	if d.n == 0 {
		return
	}
	bi := startBlock(d.refs, lo)
	off := int(d.refs[bi].off)
	left := d.refs[bi].firstLeft
	first := true
	for i := bi * blockEntries; i < d.n; i++ {
		if i%blockEntries == 0 && !first {
			left = d.refs[i/blockEntries].firstLeft
		}
		first = false
		delta, w := binary.Uvarint(d.data[off:])
		off += w
		id, w := binary.Uvarint(d.data[off:])
		off += w
		left += delta
		ok, past := inRange(left, lo, hi, loIncl, hiIncl)
		if past {
			return
		}
		if ok && !fn(left, uint32(id)) {
			return
		}
	}
}
