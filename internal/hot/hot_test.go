package hot

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/docstore"
	"repro/internal/vtrie"
)

type tripleEntry struct {
	left, right uint64
	level       uint32
}

// refScan is the oracle: linear filtering with B+-tree Scan bound
// semantics over the uncompressed entries.
func refScan(entries []tripleEntry, lo, hi uint64, loIncl, hiIncl bool) []tripleEntry {
	var out []tripleEntry
	for _, e := range entries {
		if e.left < lo || (e.left == lo && !loIncl) {
			continue
		}
		if e.left > hi || (e.left == hi && !hiIncl) {
			continue
		}
		out = append(out, e)
	}
	return out
}

func TestPostingsScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sorted lefts with duplicate runs, some crossing block boundaries.
	var entries []tripleEntry
	left := uint64(0)
	for len(entries) < 1000 {
		left += uint64(rng.Intn(5)) // 0 creates duplicates
		entries = append(entries, tripleEntry{
			left:  left,
			right: left + uint64(rng.Intn(1000)),
			level: uint32(rng.Intn(64)),
		})
	}
	b := NewPostingsBuilder()
	for _, e := range entries {
		b.Add(e.left, e.right, e.level)
	}
	p := b.Build()
	if p.Len() != len(entries) || b.Len() != len(entries) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(entries))
	}
	if p.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
	maxLeft := entries[len(entries)-1].left
	for trial := 0; trial < 500; trial++ {
		lo := uint64(rng.Intn(int(maxLeft) + 2))
		hi := lo + uint64(rng.Intn(int(maxLeft)+2))
		loIncl, hiIncl := rng.Intn(2) == 0, rng.Intn(2) == 0
		want := refScan(entries, lo, hi, loIncl, hiIncl)
		var got []tripleEntry
		p.Scan(lo, hi, loIncl, hiIncl, func(l, r uint64, lvl uint32) bool {
			got = append(got, tripleEntry{l, r, lvl})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("scan (%d,%d] incl(%v,%v): %d entries, want %d", lo, hi, loIncl, hiIncl, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("scan (%d,%d]: entry %d = %+v, want %+v", lo, hi, i, got[i], want[i])
			}
		}
	}
	// Early stop.
	n := 0
	p.Scan(0, math.MaxUint64, true, true, func(l, r uint64, lvl uint32) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty list.
	NewPostingsBuilder().Build().Scan(0, math.MaxUint64, true, true, func(l, r uint64, lvl uint32) bool {
		t.Fatal("empty list emitted")
		return false
	})
}

func TestPostingsFullRange(t *testing.T) {
	b := NewPostingsBuilder()
	b.Add(1, math.MaxUint64, 1)
	b.Add(math.MaxUint64, math.MaxUint64, 2)
	p := b.Build()
	var got []tripleEntry
	p.Scan(0, math.MaxUint64, false, true, func(l, r uint64, lvl uint32) bool {
		got = append(got, tripleEntry{l, r, lvl})
		return true
	})
	if len(got) != 2 || got[0] != (tripleEntry{1, math.MaxUint64, 1}) || got[1] != (tripleEntry{math.MaxUint64, math.MaxUint64, 2}) {
		t.Fatalf("got %+v", got)
	}
}

func TestDocIDsScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type pair struct {
		left  uint64
		docID uint32
	}
	var entries []pair
	left := uint64(0)
	for len(entries) < 700 {
		left += uint64(rng.Intn(4))
		entries = append(entries, pair{left: left, docID: uint32(rng.Intn(1 << 20))})
	}
	b := NewDocIDsBuilder()
	for _, e := range entries {
		b.Add(e.left, e.docID)
	}
	d := b.Build()
	if d.Len() != len(entries) || b.Len() != len(entries) || d.SizeBytes() <= 0 {
		t.Fatal("len/size bookkeeping")
	}
	maxLeft := entries[len(entries)-1].left
	for trial := 0; trial < 300; trial++ {
		lo := uint64(rng.Intn(int(maxLeft) + 2))
		hi := lo + uint64(rng.Intn(int(maxLeft)+2))
		var want []pair
		for _, e := range entries {
			if e.left >= lo && e.left <= hi {
				want = append(want, e)
			}
		}
		var got []pair
		d.Scan(lo, hi, true, true, func(l uint64, id uint32) bool {
			got = append(got, pair{l, id})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("scan [%d,%d]: %d entries, want %d", lo, hi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("scan [%d,%d]: entry %d = %+v, want %+v", lo, hi, i, got[i], want[i])
			}
		}
	}
	NewDocIDsBuilder().Build().Scan(0, math.MaxUint64, true, true, func(uint64, uint32) bool {
		t.Fatal("empty list emitted")
		return false
	})
}

// chainRecord builds the record of a path a/b/c/... with n nodes: node i's
// parent is i+1, leaves is node 1 only.
func chainRecord(docID uint32, n int32, syms []vtrie.Symbol) *docstore.Record {
	rec := &docstore.Record{DocID: docID, NumNodes: n}
	for i := int32(1); i < n; i++ {
		rec.NPS = append(rec.NPS, i+1)
		rec.LPS = append(rec.LPS, syms[i]) // label of node i+1
	}
	rec.Leaves = []docstore.Leaf{{Post: 1, Sym: syms[0]}}
	return rec
}

func TestSummaryRoundTrip(t *testing.T) {
	recs := []*docstore.Record{
		// A small bushy tree: root 5 with children 2 and 4; 2's child 1;
		// 4's child 3. NPS[i] is parent of node i+1... indices: node 1→2,
		// 2→5, 3→4, 4→5.
		{
			DocID: 3, NumNodes: 5,
			NPS:    []int32{2, 5, 4, 5},
			LPS:    []vtrie.Symbol{7, 9, 8, 9},
			Leaves: []docstore.Leaf{{Post: 1, Sym: 4}, {Post: 3, Sym: 5}},
		},
		chainRecord(1, 6, []vtrie.Symbol{3, 1, 4, 1, 5, 9}),
		// Single node: empty NPS/LPS.
		{DocID: 9, NumNodes: 1, Leaves: []docstore.Leaf{{Post: 1, Sym: 2}}},
		// Wide: root 4 with leaf children 1..3.
		{
			DocID: 2, NumNodes: 4,
			NPS:    []int32{4, 4, 4},
			LPS:    []vtrie.Symbol{6, 6, 6},
			Leaves: []docstore.Leaf{{Post: 1, Sym: 1}, {Post: 2, Sym: 2}, {Post: 3, Sym: 3}},
		},
	}
	for _, rec := range recs {
		s := NewSummary(rec)
		if s == nil {
			t.Fatalf("doc %d: not encodable", rec.DocID)
		}
		if s.DocID() != rec.DocID || s.SizeBytes() <= 0 {
			t.Fatalf("doc %d: bookkeeping", rec.DocID)
		}
		got := s.Record()
		if !s.matches(rec) || got.NumNodes != rec.NumNodes {
			t.Fatalf("doc %d: round trip mismatch: %+v vs %+v", rec.DocID, got, rec)
		}
	}
}

func TestSummaryRejectsDamage(t *testing.T) {
	bad := []*docstore.Record{
		nil,
		{DocID: 1, NumNodes: 0},
		// NPS length wrong.
		{DocID: 1, NumNodes: 3, NPS: []int32{3}, LPS: []vtrie.Symbol{1}},
		// Parent not after child in postorder.
		{DocID: 1, NumNodes: 3, NPS: []int32{1, 3}, LPS: []vtrie.Symbol{1, 2},
			Leaves: []docstore.Leaf{{Post: 2, Sym: 3}}},
		// Parent out of range.
		{DocID: 1, NumNodes: 3, NPS: []int32{9, 3}, LPS: []vtrie.Symbol{1, 2},
			Leaves: []docstore.Leaf{{Post: 1, Sym: 3}}},
		// Conflicting labels for one node.
		{DocID: 1, NumNodes: 3, NPS: []int32{3, 3}, LPS: []vtrie.Symbol{1, 2},
			Leaves: []docstore.Leaf{{Post: 1, Sym: 5}, {Post: 2, Sym: 5}}},
		// Leaf list missing a leaf: encodable shape but the round trip
		// must catch the difference.
		{DocID: 1, NumNodes: 3, NPS: []int32{3, 3}, LPS: []vtrie.Symbol{2, 2}},
		// Leaf entry pointing at an internal node.
		{DocID: 1, NumNodes: 3, NPS: []int32{2, 3}, LPS: []vtrie.Symbol{4, 2},
			Leaves: []docstore.Leaf{{Post: 1, Sym: 3}, {Post: 2, Sym: 4}}},
	}
	for i, rec := range bad {
		if s := NewSummary(rec); s != nil {
			t.Fatalf("case %d admitted: %+v", i, rec)
		}
	}
}

type fakeSized int

func (f fakeSized) SizeBytes() int { return int(f) }

func TestTierBudgetAndLRU(t *testing.T) {
	tr := NewTier(100)
	if tr.Budget() != 100 {
		t.Fatal("budget")
	}
	if !tr.Add("a", fakeSized(40)) || !tr.Add("b", fakeSized(40)) {
		t.Fatal("admission under budget failed")
	}
	if _, ok := tr.Get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	if !tr.Add("c", fakeSized(40)) { // evicts b (LRU)
		t.Fatal("c rejected")
	}
	if _, ok := tr.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := tr.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	st := tr.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Items != 2 || st.Budget != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st.Hits < 2 || st.Misses < 1 {
		t.Fatalf("hit accounting %+v", st)
	}
	// Oversized item rejected outright.
	if tr.Add("huge", fakeSized(101)) {
		t.Fatal("oversized admitted")
	}
	// TryAdd never evicts.
	if tr.TryAdd("d", fakeSized(40)) {
		t.Fatal("TryAdd evicted")
	}
	if tr.TryAdd("e", fakeSized(10)) == false {
		t.Fatal("TryAdd rejected a fitting item")
	}
	// Replacement frees the old size.
	if !tr.Add("a", fakeSized(10)) {
		t.Fatal("replace failed")
	}
	if tr.Bytes() != 60 {
		t.Fatalf("bytes after replace = %d", tr.Bytes())
	}
	tr.Invalidate("a")
	if _, ok := tr.Get("a"); ok {
		t.Fatal("a survived Invalidate")
	}
	tr.InvalidateAll()
	if tr.Len() != 0 || tr.Bytes() != 0 {
		t.Fatal("InvalidateAll left residue")
	}
}
