package btree

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/pager"
)

// BulkLoad fills an empty tree bottom-up from a stream of entries in
// non-decreasing key order (duplicates keep stream order, matching Insert's
// stable-duplicate semantics). next returns one entry per call and io.EOF
// when the stream is exhausted. Leaves are packed full left to right, then
// each internal level is built over the one below it, so loading n entries
// costs O(n) page writes with no splits — the streaming-ingest merge phase
// uses it to turn sorted posting runs into trees without per-entry descents.
//
// The tree must be empty: bulk loading reuses the existing root page as the
// first leaf and would orphan any prior contents. The resulting tree
// satisfies every invariant Check enforces; it differs from an Insert-built
// tree only in fill factor (full pages instead of half-split ones).
func (t *Tree) BulkLoad(next func() (key, val []byte, err error)) error {
	if t.count != 0 {
		return fmt.Errorf("btree: BulkLoad into non-empty tree %q (%d entries)", t.name, t.count)
	}

	type childRef struct {
		first []byte // first key of the subtree, the parent-level separator
		page  pager.PageID
	}

	var (
		leaves  []childRef
		cur     []leafCell
		curSize = headerSize
		curID   = t.root
		prev    []byte
		total   uint64
	)
	// flushLeaf writes the current leaf with its next-pointer and records it
	// for the parent level.
	flushLeaf := func(nextID pager.PageID) error {
		n := &nodePage{kind: leafNode, extra: uint32(nextID), leaf: cur}
		if err := t.writeNode(curID, n); err != nil {
			return err
		}
		leaves = append(leaves, childRef{first: cur[0].key, page: curID})
		return nil
	}
	for {
		key, val, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(key)+len(val) > MaxEntrySize {
			return fmt.Errorf("btree: entry of %d bytes exceeds MaxEntrySize %d", len(key)+len(val), MaxEntrySize)
		}
		if prev != nil && bytes.Compare(prev, key) > 0 {
			return fmt.Errorf("btree: BulkLoad keys out of order (%x after %x)", key, prev)
		}
		cell := leafCell{
			key: append([]byte(nil), key...),
			val: append([]byte(nil), val...),
		}
		prev = cell.key
		cost := slotSize + leafCellHdr + len(key) + len(val)
		if curSize+cost > pager.PageDataSize {
			// Seal the current leaf; its next-pointer needs the successor's
			// page id, so allocate that first (placeholder contents, filled
			// in when the successor itself seals).
			nid, err := t.allocNode(&nodePage{kind: leafNode})
			if err != nil {
				return err
			}
			if err := flushLeaf(nid); err != nil {
				return err
			}
			curID, cur, curSize = nid, nil, headerSize
		}
		cur = append(cur, cell)
		curSize += cost
		total++
	}
	if total == 0 {
		return nil // the empty root leaf is already a valid empty tree
	}
	// Zero terminates the leaf chain (page 0 is the forest meta page).
	if err := flushLeaf(0); err != nil {
		return err
	}

	// Build internal levels bottom-up until one node spans the whole level.
	level := leaves
	for len(level) > 1 {
		var (
			parents []childRef
			node    *nodePage
			first   []byte
			size    int
			flush   = func() error {
				id, err := t.allocNode(node)
				if err != nil {
					return err
				}
				parents = append(parents, childRef{first: first, page: id})
				return nil
			}
		)
		for _, child := range level {
			cost := slotSize + innerCellHdr + len(child.first)
			if node != nil && size+cost > pager.PageDataSize {
				if err := flush(); err != nil {
					return err
				}
				node = nil
			}
			if node == nil {
				// The leftmost child of a node is addressed by extra and
				// contributes no separator cell.
				node = &nodePage{kind: internalNode, extra: uint32(child.page)}
				first = child.first
				size = headerSize
				continue
			}
			node.inner = append(node.inner, innerCell{key: child.first, child: child.page})
			size += cost
		}
		if err := flush(); err != nil {
			return err
		}
		level = parents
	}
	t.root = level[0].page
	t.count = total
	t.forest.markDirty(t)
	return nil
}
