package btree

import (
	"bytes"
	"fmt"

	"repro/internal/pager"
)

// Check walks every tree in the forest and validates its structural
// invariants: page shapes (slot offsets and cell lengths in bounds), key
// ordering within pages and across separators, equal depth of all leaves,
// absence of page-reference cycles, and per-tree entry counts matching the
// directory. It returns every problem found (bounded, so a badly damaged
// file does not produce millions of lines); an empty slice means the
// forest is sound. Check never panics on damaged pages — that is its whole
// point — and it reads through the buffer pool, so page checksums are
// verified on the way.
func (f *Forest) Check() []error {
	f.mu.Lock()
	names := make([]string, 0, len(f.trees))
	for n := range f.trees {
		names = append(names, n)
	}
	trees := make(map[string]*Tree, len(f.trees))
	for n, t := range f.trees {
		trees[n] = t
	}
	f.mu.Unlock()

	c := &checker{bp: f.bp}
	for _, name := range names {
		t := trees[name]
		c.tree = name
		c.visited = make(map[pager.PageID]bool)
		c.leafDepth = -1
		entries := c.walk(t.root, 0, nil, nil)
		if c.full() {
			break
		}
		if entries != t.count {
			c.report(t.root, "directory says %d entries, tree holds %d", t.count, entries)
		}
	}
	return c.errs
}

const maxCheckErrors = 64

type checker struct {
	bp        *pager.BufferPool
	tree      string
	visited   map[pager.PageID]bool
	leafDepth int
	errs      []error
}

func (c *checker) full() bool { return len(c.errs) >= maxCheckErrors }

func (c *checker) report(id pager.PageID, format string, args ...any) {
	if c.full() {
		return
	}
	msg := fmt.Sprintf(format, args...)
	c.errs = append(c.errs, fmt.Errorf("btree: tree %q page %d: %s", c.tree, id, msg))
}

// walk validates the subtree rooted at id, whose keys must all lie in
// [low, high] (nil = unbounded), and returns its entry count. It records
// problems instead of failing fast, but never descends through a page it
// could not validate.
func (c *checker) walk(id pager.PageID, depth int, low, high []byte) uint64 {
	if c.full() {
		return 0
	}
	if c.visited[id] {
		c.report(id, "page referenced twice (cycle or shared node)")
		return 0
	}
	c.visited[id] = true
	p, err := c.bp.Get(id)
	if err != nil {
		if c.full() {
			return 0
		}
		c.errs = append(c.errs, fmt.Errorf("btree: tree %q page %d: %w", c.tree, id, err))
		return 0
	}
	defer p.Unpin(false)
	data := p.Data
	if err := validateNodeShape(data); err != nil {
		c.report(id, "%v", err)
		return 0
	}
	num := pageNumKeys(data)
	if pageKind(data) == leafNode {
		if c.leafDepth == -1 {
			c.leafDepth = depth
		} else if depth != c.leafDepth {
			c.report(id, "leaf at depth %d, expected %d", depth, c.leafDepth)
		}
		for i := 0; i < num; i++ {
			k, _ := leafCellAt(data, i)
			if low != nil && bytes.Compare(k, low) < 0 {
				c.report(id, "key %x below its subtree bound %x", k, low)
			}
			if high != nil && bytes.Compare(k, high) > 0 {
				c.report(id, "key %x above its subtree bound %x", k, high)
			}
		}
		return uint64(num)
	}
	// Internal node: children bracketed by the separators. Duplicates make
	// bounds inclusive on both sides (equal keys may sit either side of
	// their separator after a split).
	var entries uint64
	childLow := low
	for i := 0; i <= num; i++ {
		childHigh := high
		if i < num {
			k, _ := innerCellAt(data, i)
			childHigh = k
		}
		child := pageChildAt(data, i)
		if uint32(child) >= c.bp.File().NumPages() {
			c.report(id, "child %d is page %d, beyond the file's %d pages", i, child, c.bp.File().NumPages())
		} else {
			entries += c.walk(child, depth+1, childLow, childHigh)
		}
		if c.full() {
			return entries
		}
		childLow = childHigh
	}
	return entries
}

// validateNodeShape bounds-checks a node page so the raw accessors cannot
// read (or panic) outside it: kind byte, slot directory, per-cell offsets
// and lengths, and in-page key ordering.
func validateNodeShape(data []byte) error {
	kind := pageKind(data)
	if kind != leafNode && kind != internalNode {
		return fmt.Errorf("unknown node kind %d", kind)
	}
	num := pageNumKeys(data)
	slotsEnd := headerSize + slotSize*num
	if slotsEnd > len(data) {
		return fmt.Errorf("%d cells overflow the slot directory", num)
	}
	var prev []byte
	for i := 0; i < num; i++ {
		off := slotOffset(data, i)
		if off < slotsEnd {
			return fmt.Errorf("cell %d offset %d inside the slot directory", i, off)
		}
		hdr := leafCellHdr
		if kind == internalNode {
			hdr = innerCellHdr
		}
		if off+hdr > len(data) {
			return fmt.Errorf("cell %d header out of page (offset %d)", i, off)
		}
		var end int
		if kind == leafNode {
			kl := int(uint16(data[off]) | uint16(data[off+1])<<8)
			vl := int(uint16(data[off+2]) | uint16(data[off+3])<<8)
			end = off + hdr + kl + vl
		} else {
			kl := int(uint16(data[off]) | uint16(data[off+1])<<8)
			end = off + hdr + kl
		}
		if end > len(data) {
			return fmt.Errorf("cell %d body out of page (ends at %d)", i, end)
		}
		var key []byte
		if kind == leafNode {
			key, _ = leafCellAt(data, i)
		} else {
			key, _ = innerCellAt(data, i)
		}
		if prev != nil && bytes.Compare(prev, key) > 0 {
			return fmt.Errorf("cell %d key out of order", i)
		}
		prev = key
	}
	return nil
}
