package btree

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/pager"
)

// btreeWorkload inserts batches of keys into a forest tree over a
// journaled pool, committing (Forest.Flush) after each batch. It returns
// how many batches committed cleanly. Keys are deterministic so recovered
// states can be checked against expected batch boundaries.
const crashBatches = 4
const crashBatchKeys = 30

func crashKey(i int) []byte { return KeyUint64(uint64(i)*7 + 1) }

func btreeWorkload(main, journalFile pager.File) error {
	j, err := pager.NewJournal(journalFile)
	if err != nil {
		return err
	}
	bp, err := pager.NewJournaledPool(main, j, 8)
	if err != nil {
		return err
	}
	forest, err := Open(bp)
	if err != nil {
		return err
	}
	tr, err := forest.Tree("t")
	if err != nil {
		return err
	}
	for batch := 0; batch < crashBatches; batch++ {
		for i := 0; i < crashBatchKeys; i++ {
			k := batch*crashBatchKeys + i
			if err := tr.Insert(crashKey(k), []byte(fmt.Sprintf("v%d", k))); err != nil {
				return err
			}
		}
		if err := forest.Flush(); err != nil {
			return err
		}
	}
	return bp.Close()
}

// TestBtreeCrashSweep cuts power at every write point of a batched B+-tree
// build and asserts that reopening always recovers a consistent tree holding
// exactly the keys of some committed batch prefix — the paper's index
// structures never come back half-built or silently wrong.
func TestBtreeCrashSweep(t *testing.T) {
	clock := pager.NewPowerClock(0)
	mainFF := pager.NewFaultFile(pager.NewMemFile())
	journalFF := pager.NewFaultFile(pager.NewMemFile())
	mainFF.SetPowerClock(clock)
	journalFF.SetPowerClock(clock)
	if err := btreeWorkload(mainFF, journalFF); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	W := clock.Writes()
	if W < 30 {
		t.Fatalf("workload too small: %d writes", W)
	}

	for k := int64(1); k <= W; k++ {
		k := k
		t.Run(fmt.Sprintf("cut=%d", k), func(t *testing.T) {
			clock := pager.NewPowerClock(k)
			if k%2 == 0 {
				clock.SetTornBytes(int(k*1021) % pager.PageSize)
			}
			mainMem, journalMem := pager.NewMemFile(), pager.NewMemFile()
			main := pager.NewFaultFile(mainMem)
			journalFile := pager.NewFaultFile(journalMem)
			main.SetPowerClock(clock)
			journalFile.SetPowerClock(clock)

			err := btreeWorkload(main, journalFile)
			if err == nil {
				t.Fatal("workload survived the power cut")
			}
			if !errors.Is(err, pager.ErrPowerCut) {
				t.Fatalf("workload died of %v, want ErrPowerCut", err)
			}

			// Reboot on the frozen images.
			j, err := pager.NewJournal(journalMem)
			if err != nil {
				t.Fatalf("reopen journal: %v", err)
			}
			bp, err := pager.NewJournaledPool(mainMem, j, 8)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			forest, err := Open(bp)
			if err != nil {
				t.Fatalf("reopen forest: %v", err)
			}
			if errs := forest.Check(); len(errs) != 0 {
				t.Fatalf("invariants violated after recovery: %v", errs[0])
			}

			// The tree must hold exactly the keys of a committed batch
			// prefix: 0, 30, 60, ... — anything else is a torn commit.
			var gotKeys int
			tr := forest.Lookup("t")
			if tr != nil {
				err := tr.Scan(nil, nil, true, true, func(key, val []byte) bool {
					want := crashKey(gotKeys)
					if string(key) != string(want) {
						t.Errorf("key %d mismatch", gotKeys)
					}
					if string(val) != fmt.Sprintf("v%d", gotKeys) {
						t.Errorf("value %d mismatch: %q", gotKeys, val)
					}
					gotKeys++
					return true
				})
				if err != nil {
					t.Fatalf("scan after recovery: %v", err)
				}
			}
			if gotKeys%crashBatchKeys != 0 || gotKeys > crashBatches*crashBatchKeys {
				t.Errorf("recovered %d keys: not a committed batch boundary", gotKeys)
			}
		})
	}
}
