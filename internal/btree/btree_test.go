package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/pager"
)

func memForest(t testing.TB) *Forest {
	t.Helper()
	f, err := Open(pager.NewBufferPool(pager.NewMemFile(), 64))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestInsertGetSmall(t *testing.T) {
	f := memForest(t)
	tr, err := f.Tree("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("c"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		vs, err := tr.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || string(vs[0]) != want {
			t.Errorf("Get(%s) = %q, want [%s]", k, vs, want)
		}
	}
	if vs, _ := tr.Get([]byte("zz")); len(vs) != 0 {
		t.Errorf("Get(zz) = %q, want empty", vs)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDuplicateKeysInsertionOrder(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("dups")
	for i := 0; i < 500; i++ {
		if err := tr.Insert([]byte("k"), []byte(fmt.Sprintf("%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := tr.Get([]byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 500 {
		t.Fatalf("got %d values, want 500", len(vs))
	}
	for i, v := range vs {
		if string(v) != fmt.Sprintf("%04d", i) {
			t.Fatalf("value %d = %s, out of insertion order", i, v)
		}
	}
}

func TestSortedIterationMatchesModel(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("model")
	rng := rand.New(rand.NewSource(17))
	var model []string
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(100000))
		model = append(model, k)
		if err := tr.Insert([]byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(model)
	var got []string
	if err := tr.Scan(nil, nil, true, true, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(model))
	}
	for i := range got {
		if got[i] != model[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, got[i], model[i])
		}
	}
	if h, _ := tr.Height(); h < 2 {
		t.Errorf("expected multi-level tree, height = %d", h)
	}
}

func TestRangeScanBounds(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("range")
	for i := 0; i < 100; i++ {
		if err := tr.Insert(KeyUint64(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(lo, hi uint64, loIncl, hiIncl bool) []uint64 {
		var out []uint64
		err := tr.Scan(KeyUint64(lo), KeyUint64(hi), loIncl, hiIncl, func(k, v []byte) bool {
			out = append(out, Uint64Key(k))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := collect(10, 13, true, true); len(got) != 4 || got[0] != 10 || got[3] != 13 {
		t.Errorf("[10,13] = %v", got)
	}
	if got := collect(10, 13, false, false); len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Errorf("(10,13) = %v", got)
	}
	if got := collect(10, 10, false, false); len(got) != 0 {
		t.Errorf("(10,10) = %v, want empty", got)
	}
	// Early stop.
	n := 0
	tr.Scan(nil, nil, true, true, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("early stop: visited %d", n)
	}
	// Unbounded below with exclusive hi.
	var out []uint64
	tr.Scan(nil, KeyUint64(3), true, false, func(k, v []byte) bool {
		out = append(out, Uint64Key(k))
		return true
	})
	if len(out) != 3 {
		t.Errorf("(-inf,3) = %v", out)
	}
}

func TestDelete(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("del")
	for i := 0; i < 300; i++ {
		tr.Insert(KeyUint64(uint64(i%10)), []byte{byte(i)})
	}
	ok, err := tr.Delete(KeyUint64(5), []byte{byte(15)})
	if err != nil || !ok {
		t.Fatalf("Delete: %v %v", ok, err)
	}
	vs, _ := tr.Get(KeyUint64(5))
	for _, v := range vs {
		if v[0] == 15 {
			t.Error("deleted value still present")
		}
	}
	if tr.Len() != 299 {
		t.Errorf("Len = %d", tr.Len())
	}
	ok, _ = tr.Delete(KeyUint64(99), nil)
	if ok {
		t.Error("Delete of absent key reported success")
	}
	// Delete all of key 3.
	for {
		ok, err := tr.Delete(KeyUint64(3), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if vs, _ := tr.Get(KeyUint64(3)); len(vs) != 0 {
		t.Errorf("key 3 survives: %v", vs)
	}
}

func TestLargeValuesAndLimit(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("big")
	big := bytes.Repeat([]byte("x"), MaxEntrySize-8)
	if err := tr.Insert(KeyUint64(1), big); err != nil {
		t.Fatalf("max-size entry rejected: %v", err)
	}
	if err := tr.Insert(KeyUint64(2), bytes.Repeat([]byte("x"), MaxEntrySize)); err == nil {
		t.Error("oversize entry accepted")
	}
	vs, _ := tr.Get(KeyUint64(1))
	if len(vs) != 1 || !bytes.Equal(vs[0], big) {
		t.Error("big value mangled")
	}
}

func TestMultipleTreesIndependent(t *testing.T) {
	f := memForest(t)
	a, _ := f.Tree("a")
	b, _ := f.Tree("b")
	for i := 0; i < 1000; i++ {
		a.Insert(KeyUint64(uint64(i)), []byte("a"))
		b.Insert(KeyUint64(uint64(i)), []byte("b"))
	}
	va, _ := a.Get(KeyUint64(500))
	vb, _ := b.Get(KeyUint64(500))
	if string(va[0]) != "a" || string(vb[0]) != "b" {
		t.Error("trees interfere")
	}
	names := f.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if f.Lookup("a") != a || f.Lookup("zz") != nil {
		t.Error("Lookup broken")
	}
}

func TestForestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "forest.db")
	file, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := pager.NewBufferPool(file, 32)
	f, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	// Many trees to force a multi-page directory.
	for i := 0; i < 400; i++ {
		tr, err := f.Tree(fmt.Sprintf("tag-with-a-rather-long-name-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			tr.Insert(KeyUint64(uint64(j)), []byte{byte(i)})
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	file.Close()

	file2, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file2.Close()
	f2, err := Open(pager.NewBufferPool(file2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f2.Names()); got != 400 {
		t.Fatalf("reopened forest has %d trees, want 400", got)
	}
	tr := f2.Lookup("tag-with-a-rather-long-name-123")
	if tr == nil {
		t.Fatal("tree missing after reopen")
	}
	if tr.Len() != 5 {
		t.Errorf("count after reopen = %d", tr.Len())
	}
	vs, err := tr.Get(KeyUint64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0][0] != 123 {
		t.Errorf("value after reopen = %v", vs)
	}
}

func TestDirectoryShrinks(t *testing.T) {
	// Regression: rewriting a directory that previously spanned several
	// pages must terminate the chain, not leave stale continuation pages.
	f := memForest(t)
	for i := 0; i < 500; i++ {
		if _, err := f.Tree(fmt.Sprintf("very-long-tree-name-to-inflate-directory-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(f.metaPages) < 2 {
		t.Skip("directory did not span pages; enlarge the test")
	}
	// Re-flush (directory content unchanged) and reload: must round trip.
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	f2, err := Open(f.bp)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Names()) != 500 {
		t.Errorf("reloaded %d trees, want 500", len(f2.Names()))
	}
}

func TestScanDuplicatesAcrossSplits(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("dupscan")
	// Interleave duplicate keys with unique ones to force splits between
	// runs of duplicates.
	for i := 0; i < 2000; i++ {
		tr.Insert(KeyUint64(uint64(i%7)), KeyUint64(uint64(i)))
	}
	for k := 0; k < 7; k++ {
		vs, err := tr.Get(KeyUint64(uint64(k)))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		last := int64(-1)
		for i := 0; i < 2000; i++ {
			if i%7 == k {
				want++
			}
		}
		if len(vs) != want {
			t.Fatalf("key %d: %d values, want %d", k, len(vs), want)
		}
		for _, v := range vs {
			cur := int64(Uint64Key(v))
			if cur <= last {
				t.Fatalf("key %d: duplicates out of insertion order (%d after %d)", k, cur, last)
			}
			last = cur
		}
	}
}

// Property-style test: random operations against a map-of-slices model.
func TestRandomAgainstModel(t *testing.T) {
	f := memForest(t)
	tr, _ := f.Tree("fuzz")
	rng := rand.New(rand.NewSource(1234))
	model := map[string][]string{}
	var keys []string
	for i := 0; i < 8000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5, 6: // insert
			k := fmt.Sprintf("%05d", rng.Intn(500))
			v := fmt.Sprintf("%08d", i)
			if err := tr.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			if _, ok := model[k]; !ok {
				keys = append(keys, k)
			}
			model[k] = append(model[k], v)
		case 7: // delete one
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			ok, err := tr.Delete([]byte(k), nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(model[k]) > 0) {
				t.Fatalf("Delete(%s) = %v, model has %d", k, ok, len(model[k]))
			}
			if ok {
				model[k] = model[k][1:]
			}
		default: // point lookup
			if len(keys) == 0 {
				continue
			}
			k := keys[rng.Intn(len(keys))]
			vs, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != len(model[k]) {
				t.Fatalf("Get(%s) = %d values, model %d", k, len(vs), len(model[k]))
			}
			for j := range vs {
				if string(vs[j]) != model[k][j] {
					t.Fatalf("Get(%s)[%d] = %s, model %s", k, j, vs[j], model[k][j])
				}
			}
		}
	}
	// Final full scan equals sorted model.
	var want []string
	for k, vs := range model {
		for _, v := range vs {
			want = append(want, k+"/"+v)
		}
	}
	sort.Strings(want)
	var got []string
	tr.Scan(nil, nil, true, true, func(k, v []byte) bool {
		got = append(got, string(k)+"/"+string(v))
		return true
	})
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("scan %d entries, model %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %s != %s", i, got[i], want[i])
		}
	}
}

func TestKeyUint64Order(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		ca, cb := KeyUint64(a), KeyUint64(b)
		if (a < b) != (bytes.Compare(ca, cb) < 0) {
			t.Fatalf("order not preserved for %d vs %d", a, b)
		}
		if Uint64Key(ca) != a {
			t.Fatalf("round trip failed for %d", a)
		}
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	f := memForest(b)
	tr, _ := f.Tree("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(KeyUint64(uint64(i)), []byte("value"))
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	f := memForest(b)
	tr, _ := f.Tree("bench")
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(KeyUint64(rng.Uint64()), []byte("value"))
	}
}

func BenchmarkPointLookup(b *testing.B) {
	f := memForest(b)
	tr, _ := f.Tree("bench")
	for i := 0; i < 100000; i++ {
		tr.Insert(KeyUint64(uint64(i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(KeyUint64(uint64(i % 100000)))
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	f := memForest(b)
	tr, _ := f.Tree("bench")
	for i := 0; i < 100000; i++ {
		tr.Insert(KeyUint64(uint64(i)), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i % 99900)
		n := 0
		tr.Scan(KeyUint64(lo), KeyUint64(lo+99), true, true, func(k, v []byte) bool {
			n++
			return true
		})
	}
}
