package btree

import (
	"bytes"
	"encoding/binary"

	"repro/internal/pager"
)

// On-page format (v2, with a slot directory so searches touch only the
// cells they compare against instead of decoding whole pages):
//
//	header:  kind(1) numKeys(2) extra(4)
//	slots:   numKeys × uint16 cell offsets (from page start), in key order
//	cells:   leaf:  keyLen(2) valLen(2) key val
//	         inner: keyLen(2) child(4) key
//
// extra is the next-leaf page id on leaves and the leftmost child on
// internal nodes. The write path still materialises pages into nodePage
// values (insertion reshuffles cells anyway); the read path uses the
// accessors below directly on pinned page bytes, copying nothing.

// pageKind returns the node kind byte.
func pageKind(data []byte) byte { return data[0] }

// pageNumKeys returns the number of cells.
func pageNumKeys(data []byte) int { return int(binary.LittleEndian.Uint16(data[1:3])) }

// pageExtra returns the extra field (next leaf / leftmost child).
func pageExtra(data []byte) uint32 { return binary.LittleEndian.Uint32(data[3:7]) }

func slotOffset(data []byte, i int) int {
	return int(binary.LittleEndian.Uint16(data[headerSize+2*i : headerSize+2*i+2]))
}

// leafCellAt returns the i-th leaf cell's key and value, aliasing the page.
func leafCellAt(data []byte, i int) (key, val []byte) {
	off := slotOffset(data, i)
	kl := int(binary.LittleEndian.Uint16(data[off : off+2]))
	vl := int(binary.LittleEndian.Uint16(data[off+2 : off+4]))
	off += leafCellHdr
	return data[off : off+kl], data[off+kl : off+kl+vl]
}

// innerCellAt returns the i-th internal cell's key and child page id,
// aliasing the page.
func innerCellAt(data []byte, i int) (key []byte, child pager.PageID) {
	off := slotOffset(data, i)
	kl := int(binary.LittleEndian.Uint16(data[off : off+2]))
	child = pager.PageID(binary.LittleEndian.Uint32(data[off+2 : off+6]))
	off += innerCellHdr
	return data[off : off+kl], child
}

// pageChildAt returns the page id of the i-th child (0 = leftmost) of an
// internal page.
func pageChildAt(data []byte, i int) pager.PageID {
	if i == 0 {
		return pager.PageID(pageExtra(data))
	}
	_, child := innerCellAt(data, i-1)
	return child
}

// leafLowerBound returns the first index whose key is >= key.
func leafLowerBound(data []byte, key []byte) int {
	lo, hi := 0, pageNumKeys(data)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := leafCellAt(data, mid)
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafUpperBound returns the first index whose key is > key.
func leafUpperBound(data []byte, key []byte) int {
	lo, hi := 0, pageNumKeys(data)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := leafCellAt(data, mid)
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// innerChildIndex returns the child to descend into for key, biased right
// (duplicates go after equal keys).
func innerChildIndex(data []byte, key []byte) int {
	lo, hi := 0, pageNumKeys(data)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := innerCellAt(data, mid)
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// innerChildIndexLower is innerChildIndex biased left (first child that can
// contain key), used when descending for scans.
func innerChildIndexLower(data []byte, key []byte) int {
	lo, hi := 0, pageNumKeys(data)
	for lo < hi {
		mid := (lo + hi) / 2
		k, _ := innerCellAt(data, mid)
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
