// Package btree implements the disk-based B+-trees the PRIX system stores
// all its indexes in (§5.2 of the paper: Trie-Symbol indexes, Docid index;
// the ViST baseline's D-Ancestorship index uses the same trees).
//
// Multiple named trees share one page file through a Forest, mirroring how
// the paper keeps one B+-tree per element tag. Keys and values are
// arbitrary byte strings ordered by bytes.Compare; duplicate keys are
// allowed and kept in insertion order. Nodes live in the payload of
// pager pages (pager.PageDataSize bytes; the pager owns a per-page
// integrity header on top) and travel through the buffer pool, so every
// traversal is accounted in the pool's physical-read counter. Reads binary-search pages in place through
// a slot directory; only the write path materialises pages into memory.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pager"
)

const (
	leafNode     = byte(1)
	internalNode = byte(2)

	headerSize   = 7 // kind(1) + numKeys(2) + extra(4)
	slotSize     = 2 // per-cell offset
	leafCellHdr  = 4 // keyLen(2) + valLen(2)
	innerCellHdr = 6 // keyLen(2) + child(4)
)

// MaxEntrySize bounds len(key)+len(value) so that any page can hold at
// least four cells, keeping splits well defined.
const MaxEntrySize = (pager.PageDataSize-headerSize)/4 - leafCellHdr - slotSize

// Tree is one B+-tree inside a Forest.
type Tree struct {
	forest *Forest
	name   string
	root   pager.PageID
	count  uint64 // number of entries
}

// Name returns the tree's name within its forest.
func (t *Tree) Name() string { return t.name }

// Len returns the number of entries in the tree.
func (t *Tree) Len() uint64 { return t.count }

// decoded page representations (write path only) -------------------------------

type leafCell struct {
	key, val []byte
}

type innerCell struct {
	key   []byte
	child pager.PageID
}

type nodePage struct {
	kind  byte
	extra uint32 // leaf: next-leaf page id; internal: leftmost child
	leaf  []leafCell
	inner []innerCell
}

func decodePage(data []byte) (*nodePage, error) {
	n := &nodePage{kind: pageKind(data), extra: pageExtra(data)}
	num := pageNumKeys(data)
	switch n.kind {
	case leafNode:
		n.leaf = make([]leafCell, 0, num)
		for i := 0; i < num; i++ {
			k, v := leafCellAt(data, i)
			n.leaf = append(n.leaf, leafCell{
				key: append([]byte(nil), k...),
				val: append([]byte(nil), v...),
			})
		}
	case internalNode:
		n.inner = make([]innerCell, 0, num)
		for i := 0; i < num; i++ {
			k, child := innerCellAt(data, i)
			n.inner = append(n.inner, innerCell{key: append([]byte(nil), k...), child: child})
		}
	default:
		return nil, fmt.Errorf("btree: unknown node kind %d", n.kind)
	}
	return n, nil
}

func (n *nodePage) size() int {
	sz := headerSize
	for _, c := range n.leaf {
		sz += slotSize + leafCellHdr + len(c.key) + len(c.val)
	}
	for _, c := range n.inner {
		sz += slotSize + innerCellHdr + len(c.key)
	}
	return sz
}

func (n *nodePage) encode(data []byte) {
	for i := range data {
		data[i] = 0
	}
	data[0] = n.kind
	binary.LittleEndian.PutUint32(data[3:7], n.extra)
	num := len(n.leaf) + len(n.inner)
	binary.LittleEndian.PutUint16(data[1:3], uint16(num))
	off := headerSize + slotSize*num
	switch n.kind {
	case leafNode:
		for i, c := range n.leaf {
			binary.LittleEndian.PutUint16(data[headerSize+slotSize*i:], uint16(off))
			binary.LittleEndian.PutUint16(data[off:off+2], uint16(len(c.key)))
			binary.LittleEndian.PutUint16(data[off+2:off+4], uint16(len(c.val)))
			off += leafCellHdr
			off += copy(data[off:], c.key)
			off += copy(data[off:], c.val)
		}
	case internalNode:
		for i, c := range n.inner {
			binary.LittleEndian.PutUint16(data[headerSize+slotSize*i:], uint16(off))
			binary.LittleEndian.PutUint16(data[off:off+2], uint16(len(c.key)))
			binary.LittleEndian.PutUint32(data[off+2:off+6], uint32(c.child))
			off += innerCellHdr
			off += copy(data[off:], c.key)
		}
	}
}

// read/write helpers -----------------------------------------------------------

func (t *Tree) readNode(id pager.PageID) (*nodePage, error) {
	p, err := t.forest.bp.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := decodePage(p.Data)
	p.Unpin(false)
	return n, err
}

func (t *Tree) writeNode(id pager.PageID, n *nodePage) error {
	p, err := t.forest.bp.Get(id)
	if err != nil {
		return err
	}
	n.encode(p.Data)
	p.Unpin(true)
	return nil
}

func (t *Tree) allocNode(n *nodePage) (pager.PageID, error) {
	p, err := t.forest.bp.NewPage()
	if err != nil {
		return pager.InvalidPage, err
	}
	n.encode(p.Data)
	id := p.ID
	p.Unpin(true)
	return id, nil
}

// Insert adds one (key, value) entry. Duplicate keys are allowed; equal keys
// keep their insertion order under Scan.
func (t *Tree) Insert(key, val []byte) error {
	if len(key)+len(val) > MaxEntrySize {
		return fmt.Errorf("btree: entry of %d bytes exceeds MaxEntrySize %d", len(key)+len(val), MaxEntrySize)
	}
	promoted, right, err := t.insertRec(t.root, key, val)
	if err != nil {
		return err
	}
	if right != pager.InvalidPage {
		// Root split: make a new root with two children.
		newRoot := &nodePage{
			kind:  internalNode,
			extra: uint32(t.root),
			inner: []innerCell{{key: promoted, child: right}},
		}
		id, err := t.allocNode(newRoot)
		if err != nil {
			return err
		}
		t.root = id
	}
	t.count++
	t.forest.markDirty(t)
	return nil
}

// insertRec inserts under page id; on split it returns the promoted key and
// new right sibling page, else (nil, InvalidPage). The descent reads raw
// pages; only mutated nodes are decoded.
func (t *Tree) insertRec(id pager.PageID, key, val []byte) ([]byte, pager.PageID, error) {
	p, err := t.forest.bp.Get(id)
	if err != nil {
		return nil, pager.InvalidPage, err
	}
	if pageKind(p.Data) == internalNode {
		ci := innerChildIndex(p.Data, key)
		child := pageChildAt(p.Data, ci)
		p.Unpin(false)
		promoted, rightChild, err := t.insertRec(child, key, val)
		if err != nil || rightChild == pager.InvalidPage {
			return nil, pager.InvalidPage, err
		}
		// A child split: decode, insert the separator, maybe split too.
		n, err := t.readNode(id)
		if err != nil {
			return nil, pager.InvalidPage, err
		}
		cell := innerCell{key: promoted, child: rightChild}
		n.inner = append(n.inner, innerCell{})
		copy(n.inner[ci+1:], n.inner[ci:])
		n.inner[ci] = cell
		if n.size() <= pager.PageDataSize {
			return nil, pager.InvalidPage, t.writeNode(id, n)
		}
		mid := len(n.inner) / 2
		up := n.inner[mid]
		right := &nodePage{
			kind:  internalNode,
			extra: uint32(up.child),
			inner: append([]innerCell(nil), n.inner[mid+1:]...),
		}
		n.inner = n.inner[:mid]
		rid, err := t.allocNode(right)
		if err != nil {
			return nil, pager.InvalidPage, err
		}
		if err := t.writeNode(id, n); err != nil {
			return nil, pager.InvalidPage, err
		}
		return up.key, rid, nil
	}
	// Leaf: decode, insert after all equal keys (stable duplicates).
	n, err := decodePage(p.Data)
	p.Unpin(false)
	if err != nil {
		return nil, pager.InvalidPage, err
	}
	pos := upperBoundLeaf(n.leaf, key)
	n.leaf = append(n.leaf, leafCell{})
	copy(n.leaf[pos+1:], n.leaf[pos:])
	n.leaf[pos] = leafCell{key: append([]byte(nil), key...), val: append([]byte(nil), val...)}
	if n.size() <= pager.PageDataSize {
		return nil, pager.InvalidPage, t.writeNode(id, n)
	}
	// Split: move the upper half to a fresh right sibling.
	mid := len(n.leaf) / 2
	right := &nodePage{kind: leafNode, extra: n.extra, leaf: append([]leafCell(nil), n.leaf[mid:]...)}
	n.leaf = n.leaf[:mid]
	rid, err := t.allocNode(right)
	if err != nil {
		return nil, pager.InvalidPage, err
	}
	n.extra = uint32(rid)
	if err := t.writeNode(id, n); err != nil {
		return nil, pager.InvalidPage, err
	}
	return right.leaf[0].key, rid, nil
}

// upperBoundLeaf returns the first index whose key is strictly greater than
// key (insertion point after duplicates) in a decoded leaf.
func upperBoundLeaf(cells []leafCell, key []byte) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cells[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBoundLeaf returns the first index whose key is >= key in a decoded
// leaf.
func lowerBoundLeaf(cells []leafCell, key []byte) int {
	lo, hi := 0, len(cells)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(cells[mid].key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns all values stored under exactly key, in insertion order.
func (t *Tree) Get(key []byte) ([][]byte, error) {
	var out [][]byte
	err := t.Scan(key, key, true, true, func(k, v []byte) bool {
		out = append(out, append([]byte(nil), v...))
		return true
	})
	return out, err
}

// Scan visits entries with lo <= k <= hi in key order (duplicates in
// insertion order), honouring the inclusivity flags. A nil lo means
// unbounded below; a nil hi means unbounded above. fn returns false to
// stop. The key and value slices alias buffer-pool memory and are only
// valid for the duration of the callback; copy them to retain them.
func (t *Tree) Scan(lo, hi []byte, loIncl, hiIncl bool, fn func(key, val []byte) bool) error {
	id := t.root
	for {
		p, err := t.forest.bp.Get(id)
		if err != nil {
			return err
		}
		if pageKind(p.Data) == leafNode {
			return t.scanLeaves(p, lo, hi, loIncl, hiIncl, fn)
		}
		switch {
		case lo == nil:
			id = pageChildAt(p.Data, 0)
		case loIncl:
			id = pageChildAt(p.Data, innerChildIndexLower(p.Data, lo))
		default:
			id = pageChildAt(p.Data, innerChildIndex(p.Data, lo))
		}
		p.Unpin(false)
	}
}

// Prefetch warms the buffer pool with the pages a Scan over the same range
// is about to traverse, reading up to par pages concurrently. A Scan walks
// the leaf chain through next-pointers, so its cold reads form a serial
// dependency chain; Prefetch instead enumerates the in-range children
// level by level from the internal nodes, so the leaves load in parallel
// (the pool's request coalescing dedups against the scan itself and
// against concurrent prefetches). Purely best-effort: read errors are left
// for the Scan to surface, and an eviction between warm and use only costs
// a re-read. With hiIncl=false the boundary child may be warmed
// needlessly; that is at most one extra page. The return value is the
// number of non-resident pages warmed concurrently (span attribution for
// the query tracer); 0 means the readahead had nothing to do.
func (t *Tree) Prefetch(lo, hi []byte, loIncl bool, par int) int {
	var warmed atomic.Int64
	if par < 2 {
		return 0
	}
	bp := t.forest.bp
	// Readahead into a pool much smaller than the range would evict pages
	// ahead of the scan consuming them — thrashing that multiplies
	// physical reads instead of hiding them. Warm at most a quarter of the
	// pool and leave the rest to the scan's own chain.
	budget := bp.Capacity() / 4
	level := []pager.PageID{t.root}
	for len(level) > 0 && budget > 0 {
		if len(level) > budget {
			level = level[:budget]
		}
		budget -= len(level)
		// Warm the level's non-resident pages concurrently first — they
		// are exactly the reads a cold Scan would chain serially. In the
		// warm steady state nothing is missing and no goroutine is
		// spawned, keeping Prefetch near-free on the hot path.
		var missing []pager.PageID
		for _, id := range level {
			if !bp.Contains(id) {
				missing = append(missing, id)
			}
		}
		if len(missing) > 1 {
			sem := make(chan struct{}, par)
			var wg sync.WaitGroup
			for _, id := range missing {
				sem <- struct{}{}
				wg.Add(1)
				go func(id pager.PageID) {
					defer wg.Done()
					defer func() { <-sem }()
					if p, err := bp.Get(id); err == nil {
						warmed.Add(1)
						p.Unpin(false)
					}
				}(id)
			}
			wg.Wait()
		}
		var next []pager.PageID
		for li, id := range level {
			p, err := bp.Get(id)
			if err != nil {
				continue
			}
			data := p.Data
			if pageKind(data) != internalNode {
				p.Unpin(false)
				if li == 0 {
					// The tree is balanced, so the whole level is leaves:
					// they are warm now, and there is nothing below.
					return int(warmed.Load())
				}
				continue
			}
			{
				ciLo := 0
				switch {
				case lo == nil:
				case loIncl:
					ciLo = innerChildIndexLower(data, lo)
				default:
					ciLo = innerChildIndex(data, lo)
				}
				// Biased right so duplicate keys equal to hi stay in
				// range; bounds beyond this node's key span degenerate to
				// [0, numKeys] naturally.
				ciHi := pageNumKeys(data)
				if hi != nil {
					ciHi = innerChildIndex(data, hi)
				}
				for ci := ciLo; ci <= ciHi; ci++ {
					next = append(next, pageChildAt(data, ci))
				}
			}
			p.Unpin(false)
		}
		level = next
	}
	return int(warmed.Load())
}

// scanLeaves iterates leaf pages starting at the pinned page p (ownership
// of the pin transfers to scanLeaves).
func (t *Tree) scanLeaves(p *pager.Page, lo, hi []byte, loIncl, hiIncl bool, fn func(k, v []byte) bool) error {
	for {
		data := p.Data
		start := 0
		if lo != nil {
			if loIncl {
				start = leafLowerBound(data, lo)
			} else {
				start = leafUpperBound(data, lo)
			}
		}
		num := pageNumKeys(data)
		for i := start; i < num; i++ {
			k, v := leafCellAt(data, i)
			if hi != nil {
				cmp := bytes.Compare(k, hi)
				if cmp > 0 || (cmp == 0 && !hiIncl) {
					p.Unpin(false)
					return nil
				}
			}
			if !fn(k, v) {
				p.Unpin(false)
				return nil
			}
		}
		next := pageExtra(data)
		p.Unpin(false)
		if next == 0 {
			// Page 0 is the forest meta page, never a leaf, so zero
			// means "no next leaf".
			return nil
		}
		var err error
		p, err = t.forest.bp.Get(pager.PageID(next))
		if err != nil {
			return err
		}
		lo = nil // subsequent leaves start from their beginning
	}
}

// Delete removes the first entry equal to (key, val); with val == nil it
// removes the first entry with the given key. It returns whether an entry
// was removed. Deletion is lazy: pages are never merged, matching the
// load-then-query workloads in the paper.
func (t *Tree) Delete(key, val []byte) (bool, error) {
	id := t.root
	for {
		p, err := t.forest.bp.Get(id)
		if err != nil {
			return false, err
		}
		if pageKind(p.Data) == internalNode {
			next := pageChildAt(p.Data, innerChildIndexLower(p.Data, key))
			p.Unpin(false)
			id = next
			continue
		}
		p.Unpin(false)
		for {
			n, err := t.readNode(id)
			if err != nil {
				return false, err
			}
			for i := lowerBoundLeaf(n.leaf, key); i < len(n.leaf); i++ {
				if !bytes.Equal(n.leaf[i].key, key) {
					return false, nil
				}
				if val == nil || bytes.Equal(n.leaf[i].val, val) {
					n.leaf = append(n.leaf[:i], n.leaf[i+1:]...)
					if err := t.writeNode(id, n); err != nil {
						return false, err
					}
					t.count--
					t.forest.markDirty(t)
					return true, nil
				}
			}
			if n.extra == 0 {
				return false, nil
			}
			id = pager.PageID(n.extra)
		}
	}
}

// Height returns the number of levels in the tree (1 = a single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		p, err := t.forest.bp.Get(id)
		if err != nil {
			return 0, err
		}
		if pageKind(p.Data) == leafNode {
			p.Unpin(false)
			return h, nil
		}
		h++
		id = pageChildAt(p.Data, 0)
		p.Unpin(false)
	}
}
