package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/pager"
)

// forestMagic identifies page 0 of a forest file.
var forestMagic = []byte("PRIXFST1")

// Forest is a collection of named B+-trees sharing one page file. The PRIX
// system keeps one tree per element tag (the Trie-Symbol indexes) plus the
// Docid index in a single forest, as ViST keeps its D-Ancestorship index.
//
// Page 0 (and chained continuation pages) hold the directory mapping tree
// names to root pages; Flush persists it.
type Forest struct {
	mu    sync.Mutex
	bp    *pager.BufferPool
	trees map[string]*Tree
	dirty bool
	// metaPages is the chain of directory pages, first is page 0.
	metaPages []pager.PageID
}

// Open opens (or initialises) a forest over the buffer pool's file.
func Open(bp *pager.BufferPool) (*Forest, error) {
	f := &Forest{bp: bp, trees: make(map[string]*Tree)}
	if bp.File().NumPages() == 0 {
		p, err := bp.NewPage()
		if err != nil {
			return nil, err
		}
		if p.ID != 0 {
			return nil, fmt.Errorf("btree: meta page allocated as %d, want 0", p.ID)
		}
		copy(p.Data, forestMagic)
		p.Unpin(true)
		f.metaPages = []pager.PageID{0}
		f.dirty = true
		return f, nil
	}
	if err := f.loadDirectory(); err != nil {
		return nil, err
	}
	return f, nil
}

// BufferPool returns the pool the forest performs all I/O through.
func (f *Forest) BufferPool() *pager.BufferPool { return f.bp }

// Tree returns the named tree, creating an empty one if it does not exist.
func (f *Forest) Tree(name string) (*Tree, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.trees[name]; ok {
		return t, nil
	}
	t := &Tree{forest: f, name: name}
	root, err := t.allocNode(&nodePage{kind: leafNode})
	if err != nil {
		return nil, err
	}
	t.root = root
	f.trees[name] = t
	f.dirty = true
	return t, nil
}

// Lookup returns the named tree or nil if it does not exist.
func (f *Forest) Lookup(name string) *Tree {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trees[name]
}

// Names returns the sorted names of all trees in the forest.
func (f *Forest) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.trees))
	for n := range f.trees {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset drops every tree from the forest, leaving an empty directory over
// the same file. The directory page chain is kept and rewritten by the next
// Flush; the old trees' node pages stay allocated but become unreachable,
// so a rebuild can zero the ones whose stored images are damaged. This is
// the destructive half of forest repair: callers repopulate the forest from
// the surviving document records before flushing.
func (f *Forest) Reset() {
	f.mu.Lock()
	f.trees = make(map[string]*Tree)
	f.dirty = true
	f.mu.Unlock()
}

func (f *Forest) markDirty(*Tree) {
	f.mu.Lock()
	f.dirty = true
	f.mu.Unlock()
}

// Flush persists the directory and all cached pages to the file.
func (f *Forest) Flush() error {
	f.mu.Lock()
	if f.dirty {
		if err := f.storeDirectoryLocked(); err != nil {
			f.mu.Unlock()
			return err
		}
		f.dirty = false
	}
	f.mu.Unlock()
	return f.bp.FlushAll()
}

// directory serialisation ------------------------------------------------------

// Directory payload: numTrees uint32, then per tree:
// nameLen uint16, name, root uint32, count uint64.
// The payload is spread over a chain of meta pages, each laid out as
// [magic? only page 0][next uint32][used uint16][payload...].

const (
	metaHdrPage0 = 8 + 4 + 2 // magic + next + used
	metaHdrCont  = 4 + 2     // next + used
)

func (f *Forest) storeDirectoryLocked() error {
	var buf bytes.Buffer
	var scratch [12]byte
	names := make([]string, 0, len(f.trees))
	for n := range f.trees {
		names = append(names, n)
	}
	sort.Strings(names)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(names)))
	buf.Write(scratch[:4])
	for _, n := range names {
		t := f.trees[n]
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(n)))
		buf.Write(scratch[:2])
		buf.WriteString(n)
		binary.LittleEndian.PutUint32(scratch[:4], uint32(t.root))
		buf.Write(scratch[:4])
		binary.LittleEndian.PutUint64(scratch[:8], t.count)
		buf.Write(scratch[:8])
	}
	payload := buf.Bytes()
	// Split the payload into per-page chunks up front.
	var chunks [][]byte
	rest := payload
	for i := 0; ; i++ {
		hdr := metaHdrCont
		if i == 0 {
			hdr = metaHdrPage0
		}
		room := pager.PageDataSize - hdr
		chunk := rest
		if len(chunk) > room {
			chunk = chunk[:room]
		}
		rest = rest[len(chunk):]
		chunks = append(chunks, chunk)
		if len(rest) == 0 {
			break
		}
	}
	// Ensure the chain has enough pages (extra old pages stay allocated but
	// become unreachable because the last written page gets next=Invalid).
	for len(f.metaPages) < len(chunks) {
		p, err := f.bp.NewPage()
		if err != nil {
			return err
		}
		f.metaPages = append(f.metaPages, p.ID)
		p.Unpin(true)
	}
	for i, chunk := range chunks {
		p, err := f.bp.Get(f.metaPages[i])
		if err != nil {
			return err
		}
		off := 0
		if i == 0 {
			copy(p.Data, forestMagic)
			off = 8
		}
		next := uint32(pager.InvalidPage)
		if i+1 < len(chunks) {
			next = uint32(f.metaPages[i+1])
		}
		binary.LittleEndian.PutUint32(p.Data[off:off+4], next)
		binary.LittleEndian.PutUint16(p.Data[off+4:off+6], uint16(len(chunk)))
		copy(p.Data[off+6:], chunk)
		p.Unpin(true)
	}
	f.metaPages = f.metaPages[:len(chunks)]
	return nil
}

func (f *Forest) loadDirectory() error {
	var payload []byte
	id := pager.PageID(0)
	first := true
	seen := make(map[pager.PageID]bool)
	for id != pager.InvalidPage {
		if seen[id] {
			return fmt.Errorf("btree: forest meta chain cycles through page %d", id)
		}
		seen[id] = true
		p, err := f.bp.Get(id)
		if err != nil {
			return err
		}
		off := 0
		if first {
			if !bytes.Equal(p.Data[:8], forestMagic) {
				p.Unpin(false)
				return fmt.Errorf("btree: page 0 is not a forest meta page")
			}
			off = 8
		}
		next := pager.PageID(binary.LittleEndian.Uint32(p.Data[off : off+4]))
		used := int(binary.LittleEndian.Uint16(p.Data[off+4 : off+6]))
		if used > len(p.Data)-off-6 {
			p.Unpin(false)
			return fmt.Errorf("btree: forest meta page %d claims %d payload bytes", id, used)
		}
		payload = append(payload, p.Data[off+6:off+6+used]...)
		p.Unpin(false)
		f.metaPages = append(f.metaPages, id)
		id = next
		first = false
	}
	if len(payload) < 4 {
		return fmt.Errorf("btree: truncated forest directory")
	}
	num := int(binary.LittleEndian.Uint32(payload[:4]))
	off := 4
	for i := 0; i < num; i++ {
		if off+2 > len(payload) {
			return fmt.Errorf("btree: truncated directory entry %d", i)
		}
		nl := int(binary.LittleEndian.Uint16(payload[off : off+2]))
		off += 2
		if off+nl+12 > len(payload) {
			return fmt.Errorf("btree: truncated directory entry %d", i)
		}
		name := string(payload[off : off+nl])
		off += nl
		root := pager.PageID(binary.LittleEndian.Uint32(payload[off : off+4]))
		off += 4
		count := binary.LittleEndian.Uint64(payload[off : off+8])
		off += 8
		f.trees[name] = &Tree{forest: f, name: name, root: root, count: count}
	}
	return nil
}

// key encoding helpers ----------------------------------------------------------

// KeyUint64 encodes v big-endian so byte order equals numeric order. It is
// the key format of the Trie-Symbol and Docid indexes (LeftPos keys).
func KeyUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Uint64Key decodes a KeyUint64 key.
func Uint64Key(b []byte) uint64 { return binary.BigEndian.Uint64(b) }
