package btree

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/pager"
)

func newTestForest(t *testing.T) *Forest {
	t.Helper()
	fo, err := Open(pager.NewBufferPool(pager.NewMemFile(), 128))
	if err != nil {
		t.Fatal(err)
	}
	return fo
}

// sliceFeeder adapts a slice of entries to BulkLoad's pull interface.
func sliceFeeder(entries [][2][]byte) func() ([]byte, []byte, error) {
	i := 0
	return func() ([]byte, []byte, error) {
		if i >= len(entries) {
			return nil, nil, io.EOF
		}
		e := entries[i]
		i++
		return e[0], e[1], nil
	}
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	const n = 5000
	entries := make([][2][]byte, 0, n)
	for i := 0; i < n; i++ {
		// Duplicate every 7th key so stable-duplicate order is exercised,
		// including duplicates spanning leaf boundaries.
		k := KeyUint64(uint64(i / 7))
		v := []byte(fmt.Sprintf("val-%06d", i))
		entries = append(entries, [2][]byte{k, v})
	}

	fo := newTestForest(t)
	bulk, err := fo.Tree("bulk")
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.BulkLoad(sliceFeeder(entries)); err != nil {
		t.Fatal(err)
	}
	ins, err := fo.Tree("ins")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := ins.Insert(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}

	if errs := fo.Check(); len(errs) != 0 {
		t.Fatalf("check: %v", errs)
	}
	if bulk.Len() != uint64(n) {
		t.Fatalf("bulk len = %d, want %d", bulk.Len(), n)
	}

	var got, want [][2][]byte
	scan := func(tr *Tree, out *[][2][]byte) {
		err := tr.Scan(nil, nil, true, true, func(k, v []byte) bool {
			*out = append(*out, [2][]byte{append([]byte(nil), k...), append([]byte(nil), v...)})
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	scan(bulk, &got)
	scan(ins, &want)
	if len(got) != len(want) {
		t.Fatalf("scan lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i][0], want[i][0]) || !bytes.Equal(got[i][1], want[i][1]) {
			t.Fatalf("entry %d differs: %x/%q vs %x/%q", i, got[i][0], got[i][1], want[i][0], want[i][1])
		}
	}

	// Point lookups behave identically, including for duplicated keys.
	for _, key := range []uint64{0, 3, n/7 - 1} {
		g, err := bulk.Get(KeyUint64(key))
		if err != nil {
			t.Fatal(err)
		}
		w, err := ins.Get(KeyUint64(key))
		if err != nil {
			t.Fatal(err)
		}
		if len(g) != len(w) {
			t.Fatalf("Get(%d): %d vs %d values", key, len(g), len(w))
		}
		for i := range g {
			if !bytes.Equal(g[i], w[i]) {
				t.Fatalf("Get(%d) value %d differs", key, i)
			}
		}
	}

	bh, _ := bulk.Height()
	ih, _ := ins.Height()
	if bh > ih {
		t.Fatalf("bulk height %d exceeds insert height %d", bh, ih)
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	fo := newTestForest(t)
	empty, _ := fo.Tree("empty")
	if err := empty.BulkLoad(sliceFeeder(nil)); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("len = %d", empty.Len())
	}
	single, _ := fo.Tree("single")
	if err := single.BulkLoad(sliceFeeder([][2][]byte{{[]byte("k"), []byte("v")}})); err != nil {
		t.Fatal(err)
	}
	vals, err := single.Get([]byte("k"))
	if err != nil || len(vals) != 1 || !bytes.Equal(vals[0], []byte("v")) {
		t.Fatalf("get: %v %v", vals, err)
	}
	if errs := fo.Check(); len(errs) != 0 {
		t.Fatalf("check: %v", errs)
	}
	// Inserts after a bulk load keep working (full leaves split normally).
	if err := single.Insert([]byte("j"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	if errs := fo.Check(); len(errs) != 0 {
		t.Fatalf("check after insert: %v", errs)
	}
}

func TestBulkLoadRejects(t *testing.T) {
	fo := newTestForest(t)
	tr, _ := fo.Tree("t")
	err := tr.BulkLoad(sliceFeeder([][2][]byte{
		{[]byte("b"), nil},
		{[]byte("a"), nil},
	}))
	if err == nil {
		t.Fatal("out-of-order keys accepted")
	}
	fo2 := newTestForest(t)
	tr2, _ := fo2.Tree("t")
	if err := tr2.Insert([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := tr2.BulkLoad(sliceFeeder(nil)); err == nil {
		t.Fatal("bulk load into non-empty tree accepted")
	}
	fo3 := newTestForest(t)
	tr3, _ := fo3.Tree("t")
	big := make([]byte, MaxEntrySize+1)
	if err := tr3.BulkLoad(sliceFeeder([][2][]byte{{big, nil}})); err == nil {
		t.Fatal("oversized entry accepted")
	}
}

func TestBulkLoadSurvivesFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bulk.db")
	f, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := pager.NewBufferPool(f, 64)
	fo, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := fo.Tree("t")
	entries := make([][2][]byte, 2000)
	for i := range entries {
		entries[i] = [2][]byte{KeyUint64(uint64(i)), []byte(fmt.Sprintf("v%d", i))}
	}
	if err := tr.BulkLoad(sliceFeeder(entries)); err != nil {
		t.Fatal(err)
	}
	if err := fo.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f2, err := pager.OpenOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	fo2, err := Open(pager.NewBufferPool(f2, 64))
	if err != nil {
		t.Fatal(err)
	}
	tr2 := fo2.Lookup("t")
	if tr2 == nil || tr2.Len() != 2000 {
		t.Fatalf("reopened tree: %v", tr2)
	}
	var count int
	err = tr2.Scan(nil, nil, true, true, func(k, v []byte) bool {
		if Uint64Key(k) != uint64(count) {
			t.Fatalf("key %d out of order", count)
		}
		count++
		return true
	})
	if err != nil || count != 2000 {
		t.Fatalf("scan: %d entries, err %v", count, err)
	}
	if errs := fo2.Check(); len(errs) != 0 {
		t.Fatalf("check: %v", errs)
	}
}
