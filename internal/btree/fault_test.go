package btree

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/pager"
)

// Failure injection: every storage error must surface as an error return,
// never as a panic or silent corruption, and the tree must remain usable
// for reads once the fault heals.
func TestInjectedReadFaultsSurface(t *testing.T) {
	fault := pager.NewFaultFile(pager.NewMemFile())
	bp := pager.NewBufferPool(fault, 4) // tiny pool: reads hit the file
	f, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.Tree("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := tr.Insert(KeyUint64(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Fail on a read mid-scan.
	sawErr := false
	for n := 0; n < 10 && !sawErr; n++ {
		if err := bp.DropAll(); err != nil {
			t.Fatal(err)
		}
		fault.FailReadsAfter(n)
		err := tr.Scan(nil, nil, true, true, func(k, v []byte) bool { return true })
		if err != nil {
			if !errors.Is(err, pager.ErrInjected) {
				t.Fatalf("unexpected error type: %v", err)
			}
			sawErr = true
		}
		fault.Heal()
	}
	if !sawErr {
		t.Fatal("no injected read fault surfaced")
	}
	// After healing, a full scan succeeds and sees every entry.
	fault.Heal()
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := tr.Scan(nil, nil, true, true, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 3000 {
		t.Fatalf("post-heal scan saw %d entries, want 3000", count)
	}
}

func TestInjectedWriteFaultsSurface(t *testing.T) {
	fault := pager.NewFaultFile(pager.NewMemFile())
	bp := pager.NewBufferPool(fault, 2) // evictions force write-backs
	f, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.Tree("t")
	if err != nil {
		t.Fatal(err)
	}
	fault.FailWritesAfter(5)
	sawErr := false
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(KeyUint64(uint64(i)), []byte("value")); err != nil {
			if !errors.Is(err, pager.ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no injected write fault surfaced")
	}
}

func TestGetOnCorruptKindFails(t *testing.T) {
	mem := pager.NewMemFile()
	bp := pager.NewBufferPool(mem, 8)
	f, err := Open(bp)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := f.Tree("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Smash the root page's kind byte behind the pool's back.
	buf := make([]byte, pager.PageSize)
	if err := mem.ReadPage(tr.root, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	if err := mem.WritePage(tr.root, buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("x"), []byte("y")); err == nil {
		t.Error("insert into corrupt page succeeded")
	}
}

func BenchmarkForestFlush(b *testing.B) {
	f := memForest(b)
	for i := 0; i < 50; i++ {
		tr, _ := f.Tree(fmt.Sprintf("tree-%02d", i))
		for j := 0; j < 100; j++ {
			tr.Insert(KeyUint64(uint64(j)), []byte("v"))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
