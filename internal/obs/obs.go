// Package obs is the query-observability layer: hierarchical spans with
// monotonic stage timings, per-span I/O attribution and bounded attribute
// bags. A Trace is created per query and threaded through the engine via
// MatchOptions; every pipeline component opens child spans and charges its
// work to a fixed stage taxonomy (trie descent, prefetch, channel waits,
// the refinement phases, reduction).
//
// The package is allocation-conscious by design: every method is safe on a
// nil *Span or nil *Trace and the nil path performs no allocation, no time
// syscall and no atomic — so the untraced hot path stays exactly as fast
// as before instrumentation (see the AllocsPerRun regression tests).
//
// Concurrency contract: a Span's stage accumulators and attributes are
// owned by the goroutine executing that pipeline piece — never shared —
// while child-span creation is serialized through the trace mutex, so
// concurrent workers can hang their spans off a shared parent. Children
// are ordered deterministically at read time: sorted by their explicit
// ordering key (descent path, worker ordinal, arrangement index), not by
// the scheduling-dependent creation order, so span trees from concurrent
// workers merge identically run to run.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage enumerates where query time goes. The taxonomy follows the
// paper's pipeline: Algorithm 1 trie descent (with B+-tree readahead),
// the candidate hand-off, and the Algorithm 2 refinement phases.
type Stage uint8

const (
	// StageCompile is query preparation against the index dictionary.
	StageCompile Stage = iota
	// StageColdStart is dropping clean cached pages before a cold query.
	StageColdStart
	// StageDescent is the Algorithm 1 virtual-trie walk: B+-tree range
	// scans, MaxGap pruning and docid scans. For single-node queries it is
	// the document scan's non-fetch remainder.
	StageDescent
	// StagePrefetch is B+-tree readahead ahead of the descent's scans.
	StagePrefetch
	// StageEmitWait is the producer side of the candidate hand-off: time
	// the descent spends blocked sending into the bounded channel (serial
	// path: zero — candidates refine inline).
	StageEmitWait
	// StageCandWait is the consumer side: time a refinement worker spends
	// blocked receiving from the candidate channel.
	StageCandWait
	// StageFetch is document-record reads (docstore page I/O + decode).
	StageFetch
	// StageConnect is refinement by connectedness (Algorithm 2 lines 1-4
	// with the wildcard chase of §4.5), including building N from S.
	StageConnect
	// StageStructure is refinement by structure: gap consistency and
	// frequency consistency (Definitions 3-4).
	StageStructure
	// StageLeaves is root placement, leaf matching (§4.4) and building the
	// canonical embedding.
	StageLeaves
	// StageReduce is deduplication and result ordering: the embedding
	// dedup, unordered image-set dedup and the final sort.
	StageReduce
	// NumStages is the number of stages (array sizing).
	NumStages
)

var stageNames = [NumStages]string{
	"compile", "cold_start", "descent", "prefetch", "emit_wait",
	"cand_wait", "fetch", "connect", "structure", "leaves", "reduce",
}

// String returns the stage's stable snake_case name (used as the metric
// label and the JSON key).
func (st Stage) String() string {
	if st < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// StageNames returns every stage name in enum order, for metric
// registration and table headers.
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range stageNames {
		out[i] = stageNames[i]
	}
	return out
}

// IOFunc samples live (physical, logical) page-read counters. Spans call
// it at their start and end to attribute I/O deltas, so it must be cheap
// (two atomic loads) and monotonic.
type IOFunc func() (physical, logical uint64)

// Trace is one query's span tree. The zero of *Trace (nil) is a valid
// "tracing off" value: Root returns a nil span and the whole span API
// no-ops from there.
type Trace struct {
	start time.Time
	mu    sync.Mutex // guards child creation and tree reads
	root  *Span
}

// NewTrace starts a trace rooted at a span with the given name.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{t: t, name: name, endNS: -1}
	return t
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// nowNS is nanoseconds since the trace began (monotonic).
func (t *Trace) nowNS() int64 { return int64(time.Since(t.start)) }

// Finish ends every still-open span in the tree (idempotent). Call it
// after the traced operation returns and before reading the tree.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.nowNS()
	var end func(s *Span)
	end = func(s *Span) {
		if s.endNS < 0 {
			s.endNS = now
			if s.io != nil {
				s.phys1, s.logi1 = s.io()
			}
		}
		for _, c := range s.children {
			end(c)
		}
	}
	end(t.root)
}

// StageTotals sums the stage accumulators over the whole tree. Every
// nanosecond of instrumented work is charged to exactly one span's
// accumulator, so the totals never double-count nested spans.
func (t *Trace) StageTotals() (durs [NumStages]time.Duration, counts [NumStages]int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(s *Span)
	walk = func(s *Span) {
		for st := Stage(0); st < NumStages; st++ {
			durs[st] += time.Duration(s.stages[st])
			counts[st] += s.counts[st]
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(t.root)
	return
}

// WallTime is the root span's duration (elapsed-so-far before Finish).
func (t *Trace) WallTime() time.Duration {
	if t == nil {
		return 0
	}
	return t.root.Duration()
}

// maxAttrs bounds a span's attribute bag; sets beyond the bound are
// dropped silently so a runaway caller cannot balloon a trace.
const maxAttrs = 16

// attr is one key/value pair; a bounded slice beats a map here (tiny N,
// no hashing, deterministic insertion order preserved for rendering).
type attr struct {
	key   string
	str   string
	num   int64
	isStr bool
}

// Span is one timed node of the trace tree. All methods are nil-safe
// no-ops. The stage accumulators and attributes are owned by a single
// goroutine; only child creation is synchronized (via the trace mutex).
type Span struct {
	t        *Trace
	name     string
	key      string // deterministic sibling-ordering key ("" sorts first)
	io       IOFunc
	startNS  int64
	endNS    int64 // -1 while open
	phys0    uint64
	logi0    uint64
	phys1    uint64
	logi1    uint64
	stages   [NumStages]int64
	counts   [NumStages]int64
	attrs    []attr
	children []*Span
}

// Now returns nanoseconds since the trace began, 0 on a nil span (no
// time syscall on the untraced path).
func (s *Span) Now() int64 {
	if s == nil {
		return 0
	}
	return s.t.nowNS()
}

// Start opens a stage window: pair it with Stage. Returns 0 on nil.
func (s *Span) Start() int64 { return s.Now() }

// Stage closes a window opened by Start, accumulating the elapsed time
// into the stage and bumping its window count.
func (s *Span) Stage(st Stage, startNS int64) {
	if s == nil {
		return
	}
	s.stages[st] += s.t.nowNS() - startNS
	s.counts[st]++
}

// AddStage credits a pre-computed duration (clamped at zero) and n
// windows to a stage. Used for derived stages such as "walk time minus
// its timed sub-stages".
func (s *Span) AddStage(st Stage, d time.Duration, n int64) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.stages[st] += int64(d)
	s.counts[st] += n
}

// StageNS returns the accumulated nanoseconds of a stage.
func (s *Span) StageNS(st Stage) int64 {
	if s == nil {
		return 0
	}
	return s.stages[st]
}

// StageDuration returns the accumulated time of a stage.
func (s *Span) StageDuration(st Stage) time.Duration { return time.Duration(s.StageNS(st)) }

// StageCount returns how many windows were accumulated into a stage.
func (s *Span) StageCount(st Stage) int64 {
	if s == nil {
		return 0
	}
	return s.counts[st]
}

// Child opens an unkeyed child span inheriting the parent's I/O source.
func (s *Span) Child(name string) *Span { return s.child(name, "", s.ioSource()) }

// ChildKeyed opens a child span with an explicit sibling-ordering key.
// Concurrent creators may race on creation order; the key — not arrival —
// orders siblings when the tree is read, keeping traces deterministic.
func (s *Span) ChildKeyed(name, key string) *Span { return s.child(name, key, s.ioSource()) }

// ChildIO opens a keyed child with its own I/O source (e.g. a specific
// index's buffer pools), sampled at the child's start and end.
func (s *Span) ChildIO(name, key string, io IOFunc) *Span { return s.child(name, key, io) }

func (s *Span) ioSource() IOFunc {
	if s == nil {
		return nil
	}
	return s.io
}

func (s *Span) child(name, key string, io IOFunc) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, name: name, key: key, io: io, startNS: s.t.nowNS(), endNS: -1}
	if io != nil {
		c.phys0, c.logi0 = io()
	}
	s.t.mu.Lock()
	s.children = append(s.children, c)
	s.t.mu.Unlock()
	return c
}

// End closes the span, sampling its I/O source. Idempotent; open spans
// are also closed by Trace.Finish.
func (s *Span) End() {
	if s == nil || s.endNS >= 0 {
		return
	}
	s.endNS = s.t.nowNS()
	if s.io != nil {
		s.phys1, s.logi1 = s.io()
	}
}

// SetStr sets a string attribute (replacing an existing key; dropped
// beyond the bag bound).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i] = attr{key: key, str: v, isStr: true}
			return
		}
	}
	if len(s.attrs) < maxAttrs {
		s.attrs = append(s.attrs, attr{key: key, str: v, isStr: true})
	}
}

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i] = attr{key: key, num: v}
			return
		}
	}
	if len(s.attrs) < maxAttrs {
		s.attrs = append(s.attrs, attr{key: key, num: v})
	}
}

// AddInt accumulates into an integer attribute (creating it at v).
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].num += v
			return
		}
	}
	if len(s.attrs) < maxAttrs {
		s.attrs = append(s.attrs, attr{key: key, num: v})
	}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Key returns the span's sibling-ordering key.
func (s *Span) Key() string {
	if s == nil {
		return ""
	}
	return s.key
}

// Duration is the span's wall time (elapsed-so-far while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	end := s.endNS
	if end < 0 {
		end = s.t.nowNS()
	}
	return time.Duration(end - s.startNS)
}

// PagesRead is the physical page reads attributed to the span (0 until
// ended or without an I/O source).
func (s *Span) PagesRead() uint64 {
	if s == nil || s.endNS < 0 || s.phys1 < s.phys0 {
		return 0
	}
	return s.phys1 - s.phys0
}

// CacheHits is the buffer-pool hits attributed to the span: logical
// minus physical reads over its window.
func (s *Span) CacheHits() uint64 {
	if s == nil || s.endNS < 0 {
		return 0
	}
	logical := s.logi1 - s.logi0
	physical := s.phys1 - s.phys0
	if s.logi1 < s.logi0 || s.phys1 < s.phys0 || logical < physical {
		return 0
	}
	return logical - physical
}

// Int returns an integer attribute's value.
func (s *Span) Int(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for i := range s.attrs {
		if s.attrs[i].key == key && !s.attrs[i].isStr {
			return s.attrs[i].num, true
		}
	}
	return 0, false
}

// Str returns a string attribute's value.
func (s *Span) Str(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for i := range s.attrs {
		if s.attrs[i].key == key && s.attrs[i].isStr {
			return s.attrs[i].str, true
		}
	}
	return "", false
}

// Children returns the child spans in deterministic order: sorted by
// ordering key (then name), with creation order as the final tie-break.
// The returned slice is a copy; take it after the traced work is done
// (or after Trace.Finish) — it snapshots under the trace mutex.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].key != out[j].key {
			return out[i].key < out[j].key
		}
		return out[i].name < out[j].name
	})
	return out
}
