package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilAPIZeroAllocs is the overhead regression test for the untraced
// hot path: the whole span API on a nil receiver must perform zero
// allocations (and, by construction, no time syscalls).
func TestNilAPIZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Root()
		t0 := sp.Start()
		sp.Stage(StageDescent, t0)
		sp.AddStage(StageFetch, time.Millisecond, 1)
		c := sp.Child("filter")
		k := c.ChildKeyed("worker", "000")
		k.SetInt("n", 1)
		k.SetStr("q", "//a")
		k.AddInt("pages", 3)
		_ = k.Now()
		_ = k.StageNS(StageReduce)
		_ = k.Duration()
		k.End()
		c.End()
		sp.End()
		tr.Finish()
		_ = tr.Tree()
		_, _ = tr.StageTotals()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer path allocates: %v allocs/op", allocs)
	}
}

// TestStageAccumulation checks windows accumulate and totals sum over the
// whole tree without double counting.
func TestStageAccumulation(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.Root().Child("match")
	sp.AddStage(StageDescent, 10*time.Millisecond, 2)
	c := sp.Child("refine")
	c.AddStage(StageFetch, 5*time.Millisecond, 1)
	c.AddStage(StageFetch, 2*time.Millisecond, 1)
	c.AddStage(StageConnect, -time.Second, 1) // clamped to zero
	tr.Finish()

	if got := c.StageDuration(StageFetch); got != 7*time.Millisecond {
		t.Errorf("fetch = %v, want 7ms", got)
	}
	if got := c.StageCount(StageFetch); got != 2 {
		t.Errorf("fetch count = %d, want 2", got)
	}
	if got := c.StageDuration(StageConnect); got != 0 {
		t.Errorf("negative AddStage not clamped: %v", got)
	}
	durs, counts := tr.StageTotals()
	if durs[StageDescent] != 10*time.Millisecond || durs[StageFetch] != 7*time.Millisecond {
		t.Errorf("totals = %v", durs)
	}
	if counts[StageDescent] != 2 || counts[StageFetch] != 2 {
		t.Errorf("total counts = %v", counts)
	}
}

// TestDeterministicChildOrder: siblings created out of key order (as
// concurrent workers would) must read back sorted by key.
func TestDeterministicChildOrder(t *testing.T) {
	tr := NewTrace("q")
	root := tr.Root()
	var wg sync.WaitGroup
	keys := []string{"003", "001", "004", "000", "002"}
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			root.ChildKeyed("worker", k).End()
		}(k)
	}
	wg.Wait()
	tr.Finish()
	kids := root.Children()
	for i, c := range kids {
		want := []string{"000", "001", "002", "003", "004"}[i]
		if c.Key() != want {
			t.Fatalf("child %d key = %q, want %q", i, c.Key(), want)
		}
	}
	// The JSON form must be byte-identical across encodings.
	a, err := json.Marshal(tr.Tree())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(tr.Tree())
	if !bytes.Equal(a, b) {
		t.Error("tree encoding not deterministic")
	}
}

// TestIODeltas: spans attribute (physical, logical) counter deltas over
// their window, and cache hits are the logical-minus-physical remainder.
func TestIODeltas(t *testing.T) {
	var phys, logi uint64
	io := func() (uint64, uint64) { return phys, logi }
	tr := NewTrace("q")
	sp := tr.Root().ChildIO("match", "", io)
	phys, logi = 10, 40
	inner := sp.Child("filter") // inherits the I/O source
	phys, logi = 15, 60
	inner.End()
	sp.End()
	if got := inner.PagesRead(); got != 5 {
		t.Errorf("inner pages = %d, want 5", got)
	}
	if got := inner.CacheHits(); got != 15 {
		t.Errorf("inner hits = %d, want 15 (20 logical - 5 physical)", got)
	}
	if got := sp.PagesRead(); got != 15 {
		t.Errorf("outer pages = %d, want 15", got)
	}
	if got := tr.Root().PagesRead(); got != 0 {
		t.Errorf("root without IO source reported pages = %d", got)
	}
}

// TestAttrBagBounded: the 17th attribute is dropped, not stored.
func TestAttrBagBounded(t *testing.T) {
	tr := NewTrace("q")
	sp := tr.Root()
	for i := 0; i < maxAttrs+8; i++ {
		sp.SetInt(string(rune('a'+i)), int64(i))
	}
	if len(sp.attrs) != maxAttrs {
		t.Fatalf("attr bag grew to %d, bound is %d", len(sp.attrs), maxAttrs)
	}
	sp.SetInt("a", 99) // replacing an existing key still works at the bound
	if v, _ := sp.Int("a"); v != 99 {
		t.Errorf("replace at bound: a = %d", v)
	}
	sp.AddInt("a", 1)
	if v, _ := sp.Int("a"); v != 100 {
		t.Errorf("AddInt: a = %d", v)
	}
}

// TestFinishClosesOpenSpans: spans left open (error paths) get end times
// and I/O samples from Finish, and Finish is idempotent.
func TestFinishClosesOpenSpans(t *testing.T) {
	var phys uint64
	tr := NewTrace("q")
	sp := tr.Root().ChildIO("match", "", func() (uint64, uint64) { return phys, phys })
	phys = 7
	tr.Finish()
	tr.Finish()
	if sp.Duration() <= 0 {
		t.Error("open span not closed by Finish")
	}
	if got := sp.PagesRead(); got != 7 {
		t.Errorf("Finish did not sample IO: pages = %d", got)
	}
}

// TestRender smoke-tests the human renderer: names, keys, stages and
// attrs all appear, indented by depth.
func TestRender(t *testing.T) {
	tr := NewTrace("query")
	sp := tr.Root().Child("match")
	sp.AddStage(StageDescent, 3*time.Millisecond, 4)
	sp.SetStr("query", "//a/b")
	sp.ChildKeyed("worker", "001").End()
	tr.Finish()
	var buf bytes.Buffer
	Render(&buf, tr)
	out := buf.String()
	for _, want := range []string{"query", "match", "descent 3ms/4", "query=//a/b", "worker(001)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	var nilBuf bytes.Buffer
	Render(&nilBuf, nil) // must not panic
	if nilBuf.Len() != 0 {
		t.Error("nil trace rendered output")
	}
}

// TestStageNames: the enum and the name table stay in sync.
func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames: %d names, %d stages", len(names), NumStages)
	}
	seen := map[string]bool{}
	for st := Stage(0); st < NumStages; st++ {
		n := st.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Errorf("stage %d name %q invalid or duplicate", st, n)
		}
		seen[n] = true
	}
	if NumStages.String() != "unknown" {
		t.Error("out-of-range stage must stringify as unknown")
	}
}

// BenchmarkNilSpanStage measures the untraced fast path (the per-candidate
// cost when tracing is off).
func BenchmarkNilSpanStage(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := sp.Start()
		sp.Stage(StageFetch, t0)
	}
}

// BenchmarkTracedSpanStage measures the traced window cost (two monotonic
// clock reads plus integer adds).
func BenchmarkTracedSpanStage(b *testing.B) {
	tr := NewTrace("bench")
	sp := tr.Root().Child("span")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := sp.Start()
		sp.Stage(StageFetch, t0)
	}
}
