package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SpanJSON is the wire form of a span tree: the `?trace=1` response field
// and the slow-log dump. Durations are nanoseconds (integer, lossless);
// maps marshal with sorted keys, and children are pre-sorted by ordering
// key, so encoding the same tree twice yields identical bytes.
type SpanJSON struct {
	Name      string           `json:"name"`
	Key       string           `json:"key,omitempty"`
	StartNS   int64            `json:"start_ns"`
	DurNS     int64            `json:"dur_ns"`
	PagesRead uint64           `json:"pages_read,omitempty"`
	CacheHits uint64           `json:"cache_hits,omitempty"`
	Stages    map[string]int64 `json:"stages_ns,omitempty"`
	Counts    map[string]int64 `json:"stage_counts,omitempty"`
	Attrs     map[string]any   `json:"attrs,omitempty"`
	Children  []*SpanJSON      `json:"children,omitempty"`
}

// Tree converts the trace into its wire form. Call Finish first so every
// span has an end time and an I/O delta.
func (t *Trace) Tree() *SpanJSON {
	if t == nil {
		return nil
	}
	return t.root.tree()
}

func (s *Span) tree() *SpanJSON {
	if s == nil {
		return nil
	}
	j := &SpanJSON{
		Name:      s.name,
		Key:       s.key,
		StartNS:   s.startNS,
		DurNS:     int64(s.Duration()),
		PagesRead: s.PagesRead(),
		CacheHits: s.CacheHits(),
	}
	for st := Stage(0); st < NumStages; st++ {
		if s.stages[st] == 0 && s.counts[st] == 0 {
			continue
		}
		if j.Stages == nil {
			j.Stages = map[string]int64{}
			j.Counts = map[string]int64{}
		}
		j.Stages[st.String()] = s.stages[st]
		j.Counts[st.String()] = s.counts[st]
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.isStr {
				j.Attrs[a.key] = a.str
			} else {
				j.Attrs[a.key] = a.num
			}
		}
	}
	for _, c := range s.Children() {
		j.Children = append(j.Children, c.tree())
	}
	return j
}

// Render writes the trace as an indented human-readable tree (the
// prixquery -trace output). Call Finish first.
func Render(w io.Writer, t *Trace) {
	if t == nil {
		return
	}
	renderSpan(w, t.Tree(), 0)
}

// RenderTree renders an already-encoded span tree (e.g. one received from
// a server's ?trace=1 response).
func RenderTree(w io.Writer, j *SpanJSON) { renderSpan(w, j, 0) }

func renderSpan(w io.Writer, j *SpanJSON, depth int) {
	if j == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	head := j.Name
	if j.Key != "" {
		head += "(" + j.Key + ")"
	}
	fmt.Fprintf(w, "%s%-*s %10s", indent, 24-len(indent), head, fmtNS(j.DurNS))
	if j.PagesRead > 0 || j.CacheHits > 0 {
		fmt.Fprintf(w, "  io: %d pages, %d hits", j.PagesRead, j.CacheHits)
	}
	fmt.Fprintln(w)
	if len(j.Stages) > 0 {
		var parts []string
		// Enum order, not map order: readers scan the pipeline left to right.
		for st := Stage(0); st < NumStages; st++ {
			ns, ok := j.Stages[st.String()]
			if !ok {
				continue
			}
			parts = append(parts, fmt.Sprintf("%s %s/%d", st, fmtNS(ns), j.Counts[st.String()]))
		}
		fmt.Fprintf(w, "%s  stages: %s\n", indent, strings.Join(parts, ", "))
	}
	if len(j.Attrs) > 0 {
		var parts []string
		for _, k := range sortedAttrKeys(j.Attrs) {
			parts = append(parts, fmt.Sprintf("%s=%v", k, j.Attrs[k]))
		}
		fmt.Fprintf(w, "%s  attrs: %s\n", indent, strings.Join(parts, " "))
	}
	for _, c := range j.Children {
		renderSpan(w, c, depth+1)
	}
}

func sortedAttrKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// fmtNS renders a nanosecond duration rounded for humans (full precision
// lives in the JSON form).
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
