package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzSpanJSON hardens the trace encoder that backs ?trace=1 responses and
// the slow-query log: arbitrary span names, keys and attribute payloads
// (including invalid UTF-8 and control bytes) must always produce valid
// JSON that round-trips, never a panic.
func FuzzSpanJSON(f *testing.F) {
	f.Add("match", "000", "query", "//a[./b]/c", int64(1234), uint8(3), uint8(2))
	f.Add("", "", "", "", int64(-1), uint8(0), uint8(255))
	f.Add("sp\xffan", "k\x00ey", "at\ntr", "va\x80lue", int64(1<<62), uint8(40), uint8(7))
	f.Fuzz(func(t *testing.T, name, key, attrKey, attrVal string, n int64, depth, stageRaw uint8) {
		tr := NewTrace(name)
		sp := tr.Root()
		// Grow a chain (bounded) with fuzz-controlled names and keys, and
		// spray stages/attrs — including out-of-range writes via AddStage's
		// typed argument kept in range, and oversized attr bags.
		for d := 0; d < int(depth%12)+1; d++ {
			sp = sp.ChildKeyed(name, key)
			st := Stage(stageRaw) % NumStages
			sp.AddStage(st, time.Duration(n), n)
			t0 := sp.Start()
			sp.Stage(st, t0)
			sp.SetStr(attrKey, attrVal)
			sp.SetInt(attrKey+"_n", n)
			sp.AddInt(attrKey+"_n", n)
			sp.ChildKeyed(key, name).End()
		}
		tr.Finish()
		tree := tr.Tree()
		raw, err := json.Marshal(tree)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !json.Valid(raw) {
			t.Fatalf("encoder produced invalid JSON: %q", raw)
		}
		var back SpanJSON
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("round-trip: %v", err)
		}
		// Encoding must be deterministic: a second pass yields identical bytes.
		raw2, _ := json.Marshal(tr.Tree())
		if string(raw) != string(raw2) {
			t.Fatal("encoding not deterministic")
		}
	})
}
