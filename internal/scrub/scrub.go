// Package scrub implements the background scrubber of a PRIX index: a
// rate-limited loop that continuously walks physical pages, B+-tree
// invariants and document records, quarantines what it finds damaged before
// queries trip over it, and (when enabled) repairs the damage online using
// the Prüfer-sequence redundancy the index carries by construction.
//
// One pass runs four phases:
//
//  1. raw page scan of the document store file — every page is read
//     straight from disk and checksum-verified, bypassing the buffer pool
//     so cached clean copies cannot mask on-disk rot; the documents whose
//     records touch a bad page are quarantined immediately.
//  2. raw page scan of the forest file (Trie-Symbol trees, Docid index,
//     structure sidecar).
//  3. B+-tree invariant check over every tree in the forest.
//  4. per-document deep verification: decode the record, reconstruct the
//     tree from its NPS (the §3.1 one-to-one correspondence), re-derive the
//     sequence and cross-check it against the trie postings, the Docid
//     entry and the structure sidecar.
//
// With repair enabled the pass then heals what it can: corrupt pages are
// re-sealed from still-cached verified frames, damaged records are
// rewritten from the index side, missing postings are patched from the
// record side, shared-trie damage triggers a full forest rebuild, and
// orphaned pages are zeroed — each step committing through the rollback
// journal and re-verified before the document leaves quarantine.
package scrub

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pager"
	"repro/internal/prix"
)

// Config tunes a Scrubber.
type Config struct {
	// Interval between passes for Start (default 30s).
	Interval time.Duration
	// Throttle is the sleep between batches of pages/documents, bounding
	// the scrubber's I/O share (default 2ms; negative disables).
	Throttle time.Duration
	// Batch is how many pages or documents are processed between throttle
	// sleeps (default 64).
	Batch int
	// Busy, when non-nil, reports that the server is under load; the
	// scrubber backs off (sleeping BusyBackoff) while it returns true.
	Busy func() bool
	// BusyBackoff is the sleep while Busy reports true (default 100ms).
	BusyBackoff time.Duration
	// AutoRepair makes every pass repair what it finds. RepairNow repairs
	// regardless.
	AutoRepair bool
	// RepairForest overrides the full-rebuild step; a DynamicIndex must
	// pass its own RepairForest so the labeler is rebuilt alongside the
	// postings. Nil uses Index.RepairForest (exact relabeling).
	RepairForest func() ([]uint32, error)
	// Source, when non-nil, re-resolves the index at the start of every
	// pass. Serving tiers that swap epochs (internal/compact) pass a
	// resolver here so the scrubber follows a swap instead of scrubbing a
	// closed epoch's files.
	Source func() *prix.Index
	// Gate, when non-nil, brackets every pass. A pass runs only while
	// inside the gate; one that cannot enter — an epoch swap is pending or
	// in progress — is skipped and counted (Stats.PassesSkipped) instead of
	// reporting forest-invariant violations against files that are mid-swap.
	Gate SwapGate
}

// SwapGate coordinates scrub passes with epoch swaps. compact.Root's Gate
// satisfies it: TryEnter fails while a swap is pending (never blocking the
// scrubber), and a successful entry holds the swap out until Exit.
type SwapGate interface {
	TryEnter() bool
	Exit()
}

func (c *Config) interval() time.Duration {
	if c.Interval <= 0 {
		return 30 * time.Second
	}
	return c.Interval
}

func (c *Config) throttle() time.Duration {
	if c.Throttle == 0 {
		return 2 * time.Millisecond
	}
	if c.Throttle < 0 {
		return 0
	}
	return c.Throttle
}

func (c *Config) batch() int {
	if c.Batch <= 0 {
		return 64
	}
	return c.Batch
}

func (c *Config) busyBackoff() time.Duration {
	if c.BusyBackoff <= 0 {
		return 100 * time.Millisecond
	}
	return c.BusyBackoff
}

// Finding is one piece of damage a pass observed.
type Finding struct {
	// Kind is "page" (checksum failure), "forest" (B+-tree invariant
	// violation) or "doc" (deep per-document verification failure).
	Kind string `json:"kind"`
	// File names the page file for page findings.
	File string `json:"file,omitempty"`
	// Page is the damaged page for page findings, -1 otherwise.
	Page int64 `json:"page"`
	// Doc is the affected document for doc findings, -1 otherwise.
	Doc int64 `json:"doc"`
	// Err is the verification error text.
	Err string `json:"err"`
}

// Repair is the outcome of one per-document repair attempt.
type Repair struct {
	Doc    int64  `json:"doc"`
	Action string `json:"action"`
	Err    string `json:"err,omitempty"`
}

// Report summarizes one pass.
type Report struct {
	Pass          uint64        `json:"pass"`
	PagesScanned  int           `json:"pages_scanned"`
	DocsScanned   int           `json:"docs_scanned"`
	Findings      []Finding     `json:"findings,omitempty"`
	PagesRepaired int           `json:"pages_repaired"`
	Repairs       []Repair      `json:"repairs,omitempty"`
	ForestRebuilt bool          `json:"forest_rebuilt"`
	Quarantined   []uint32      `json:"quarantined,omitempty"`
	Clean         bool          `json:"clean"`
	// Skipped reports the pass did not run because the swap gate was held
	// (an epoch swap was pending); nothing was scanned.
	Skipped  bool          `json:"skipped,omitempty"`
	Duration time.Duration `json:"duration_ns"`
}

// Stats is a point-in-time snapshot of the scrubber's counters.
type Stats struct {
	Passes        uint64 `json:"passes"`
	PassesSkipped uint64 `json:"passes_skipped"`
	PagesScanned  uint64 `json:"pages_scanned"`
	DocsScanned   uint64 `json:"docs_scanned"`
	Findings      uint64 `json:"findings"`
	PagesRepaired uint64 `json:"pages_repaired"`
	RepairsDone   uint64 `json:"repairs_done"`
	RepairsFailed uint64 `json:"repairs_failed"`
	Running       bool   `json:"running"`
}

// Scrubber drives scrub passes over one index. Safe for concurrent use with
// queries and inserts: verification takes the index's repair lock in read
// mode, repairs in write mode.
type Scrubber struct {
	ix  *prix.Index
	cfg Config

	passes        atomic.Uint64
	passesSkipped atomic.Uint64
	pagesScanned  atomic.Uint64
	docsScanned   atomic.Uint64
	findings      atomic.Uint64
	pagesRepaired atomic.Uint64
	repairsDone   atomic.Uint64
	repairsFailed atomic.Uint64
	running       atomic.Bool

	// passMu serializes passes: with a Source resolver, each pass rebinds
	// s.ix, which must not race a concurrent RepairNow.
	passMu sync.Mutex

	mu   sync.Mutex
	last *Report

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Scrubber over the index. For a DynamicIndex pass
// di.Index() and set Config.RepairForest to di.RepairForest.
func New(ix *prix.Index, cfg Config) *Scrubber {
	return &Scrubber{
		ix:   ix,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the background loop: one pass every Interval until Stop.
func (s *Scrubber) Start() {
	s.startOnce.Do(func() {
		go s.loop()
	})
}

// Stop halts the background loop and waits for an in-flight pass to finish.
// Safe to call without Start (returns immediately) and more than once.
func (s *Scrubber) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	// If Start never ran, consume startOnce ourselves so the wait below
	// does not block forever.
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

func (s *Scrubber) loop() {
	defer close(s.done)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-s.stop
		cancel()
	}()
	ticker := time.NewTicker(s.cfg.interval())
	defer ticker.Stop()
	for {
		if _, err := s.RunPass(ctx); err != nil && ctx.Err() != nil {
			return
		}
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
	}
}

// Stats returns the lifetime counters.
func (s *Scrubber) Stats() Stats {
	return Stats{
		Passes:        s.passes.Load(),
		PassesSkipped: s.passesSkipped.Load(),
		PagesScanned:  s.pagesScanned.Load(),
		DocsScanned:   s.docsScanned.Load(),
		Findings:      s.findings.Load(),
		PagesRepaired: s.pagesRepaired.Load(),
		RepairsDone:   s.repairsDone.Load(),
		RepairsFailed: s.repairsFailed.Load(),
		Running:       s.running.Load(),
	}
}

// LastReport returns the most recent completed pass (nil before the first).
func (s *Scrubber) LastReport() *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// RunPass executes one scrub pass; repairs run only when AutoRepair is set.
func (s *Scrubber) RunPass(ctx context.Context) (*Report, error) {
	return s.pass(ctx, s.cfg.AutoRepair)
}

// RepairNow executes one pass with repair forced, regardless of AutoRepair.
// This is the online-repair entry point (POST /repair).
func (s *Scrubber) RepairNow(ctx context.Context) (*Report, error) {
	return s.pass(ctx, true)
}

func (s *Scrubber) pass(ctx context.Context, repair bool) (*Report, error) {
	s.passMu.Lock()
	defer s.passMu.Unlock()
	// Enter the swap gate before touching any file: if an epoch swap is
	// pending, the files this scrubber would scan are about to be replaced
	// (or deleted), and any "violation" found in them would be noise. Skip
	// the pass; the swap waits for no one, and the next pass scrubs the new
	// epoch.
	if s.cfg.Gate != nil {
		if !s.cfg.Gate.TryEnter() {
			s.passesSkipped.Add(1)
			rep := &Report{Skipped: true}
			s.mu.Lock()
			s.last = rep
			s.mu.Unlock()
			return rep, nil
		}
		defer s.cfg.Gate.Exit()
	}
	if s.cfg.Source != nil {
		s.ix = s.cfg.Source()
	}
	s.running.Store(true)
	defer s.running.Store(false)
	start := time.Now()
	rep := &Report{Pass: s.passes.Add(1)}

	if err := s.scanPages(ctx, rep); err != nil {
		return rep, err
	}
	for _, err := range s.ix.CheckForest() {
		rep.Findings = append(rep.Findings, Finding{Kind: "forest", File: "seq.idx", Page: -1, Doc: -1, Err: err.Error()})
	}
	if err := s.verifyDocs(ctx, rep); err != nil {
		return rep, err
	}

	if repair && len(rep.Findings) > 0 {
		if err := s.repairAll(ctx, rep); err != nil {
			s.finish(rep, start)
			return rep, err
		}
	}

	rep.Quarantined = s.ix.Quarantined()
	rep.Clean = len(rep.Findings) == 0 && len(rep.Quarantined) == 0
	s.finish(rep, start)
	return rep, ctx.Err()
}

func (s *Scrubber) finish(rep *Report, start time.Time) {
	rep.Duration = time.Since(start)
	s.findings.Add(uint64(len(rep.Findings)))
	s.mu.Lock()
	s.last = rep
	s.mu.Unlock()
}

// scanPages raw-reads every page of both files, verifying checksums against
// the on-disk image (phases 1 and 2). Documents whose records touch a
// corrupt store page are quarantined before any query can read them.
func (s *Scrubber) scanPages(ctx context.Context, rep *Report) error {
	store := s.ix.Store()
	err := s.scanFile(ctx, s.ix.Forest().BufferPool().File(), "seq.idx", rep, nil)
	if err != nil {
		return err
	}
	return s.scanFile(ctx, store.BufferPool().File(), "docs.db", rep, func(id pager.PageID) {
		for _, d := range store.DocsOnPage(id) {
			store.Quarantine(d)
		}
	})
}

func (s *Scrubber) scanFile(ctx context.Context, f pager.File, name string, rep *Report, onCorrupt func(pager.PageID)) error {
	buf := make([]byte, pager.PageSize)
	n := f.NumPages()
	for id := uint32(0); id < n; id++ {
		if id%uint32(s.cfg.batch()) == 0 {
			if err := s.pace(ctx); err != nil {
				return err
			}
		}
		if err := f.ReadPage(pager.PageID(id), buf); err != nil {
			return fmt.Errorf("scrub: reading %s page %d: %w", name, id, err)
		}
		rep.PagesScanned++
		s.pagesScanned.Add(1)
		if verr := pager.VerifyPage(pager.PageID(id), buf); verr != nil {
			rep.Findings = append(rep.Findings, Finding{Kind: "page", File: name, Page: int64(id), Doc: -1, Err: verr.Error()})
			if onCorrupt != nil {
				onCorrupt(pager.PageID(id))
			}
		}
	}
	return nil
}

// verifyDocs deep-checks every document (phase 4), quarantining damaged
// ones.
func (s *Scrubber) verifyDocs(ctx context.Context, rep *Report) error {
	n := s.ix.NumDocs()
	for id := 0; id < n; id++ {
		if id%s.cfg.batch() == 0 {
			if err := s.pace(ctx); err != nil {
				return err
			}
		}
		rep.DocsScanned++
		s.docsScanned.Add(1)
		if err := s.ix.VerifyDoc(uint32(id)); err != nil {
			rep.Findings = append(rep.Findings, Finding{Kind: "doc", Page: -1, Doc: int64(id), Err: err.Error()})
			s.ix.Store().Quarantine(uint32(id))
		}
	}
	return nil
}

// repairAll heals the pass's findings in escalation order: re-seal pages
// from cached verified frames, per-document repair, full forest rebuild if
// shared trie structure is damaged, then zero orphaned store pages.
func (s *Scrubber) repairAll(ctx context.Context, rep *Report) error {
	// Cheapest first: a page whose clean copy is still in the buffer pool
	// is repaired by rewriting it, no structural work needed.
	if n, err := s.ix.SweepForestPages(); err != nil {
		return err
	} else {
		rep.PagesRepaired += n
		s.pagesRepaired.Add(uint64(n))
	}
	if n, err := s.ix.SweepStorePages(); err != nil {
		return err
	} else {
		rep.PagesRepaired += n
		s.pagesRepaired.Add(uint64(n))
	}

	needRebuild := s.repairDocs(ctx, rep)

	// A forest page that still fails its checksum after the light sweep has
	// no cached copy to restore it from; whether it is live tree structure or
	// an orphan, only a rebuild (which rewrites every live page and zeroes
	// the rest) can make the file verify clean again.
	if needRebuild || s.forestStillCorrupt() || len(s.ix.CheckForest()) > 0 {
		if err := s.pace(ctx); err != nil {
			return err
		}
		rebuild := s.cfg.RepairForest
		if rebuild == nil {
			rebuild = s.ix.RepairForest
		}
		if _, err := rebuild(); err != nil {
			s.repairsFailed.Add(1)
			return fmt.Errorf("scrub: forest rebuild: %w", err)
		}
		rep.ForestRebuilt = true
		// The rebuild changed the postings side under every document; run
		// the per-document repairs again for whatever is still quarantined.
		s.repairDocs(ctx, rep)
	}

	// Record rewrites leave old record spans unreferenced; zero any of
	// those that are corrupt so the file verifies clean end to end.
	if n, err := s.ix.SweepStorePages(); err != nil {
		return err
	} else {
		rep.PagesRepaired += n
		s.pagesRepaired.Add(uint64(n))
	}

	// Re-scan so the report reflects post-repair reality: findings that
	// were healed are dropped, anything still damaged is re-reported.
	healed := rep.Findings[:0]
	rescan := &Report{}
	if err := s.scanPages(ctx, rescan); err != nil {
		return err
	}
	for _, err := range s.ix.CheckForest() {
		rescan.Findings = append(rescan.Findings, Finding{Kind: "forest", File: "seq.idx", Page: -1, Doc: -1, Err: err.Error()})
	}
	for _, d := range s.ix.Quarantined() {
		if err := s.ix.VerifyDoc(d); err != nil {
			rescan.Findings = append(rescan.Findings, Finding{Kind: "doc", Page: -1, Doc: int64(d), Err: err.Error()})
		}
	}
	rep.Findings = append(healed, rescan.Findings...)
	return nil
}

// forestStillCorrupt raw-scans the forest file for pages whose stored image
// fails verification.
func (s *Scrubber) forestStillCorrupt() bool {
	f := s.ix.Forest().BufferPool().File()
	buf := make([]byte, pager.PageSize)
	for id := uint32(0); id < f.NumPages(); id++ {
		if f.ReadPage(pager.PageID(id), buf) != nil {
			return true
		}
		if pager.VerifyPage(pager.PageID(id), buf) != nil {
			return true
		}
	}
	return false
}

// repairDocs attempts RepairDoc for every quarantined document, recording
// outcomes; reports whether any document needs a forest rebuild.
func (s *Scrubber) repairDocs(ctx context.Context, rep *Report) (needRebuild bool) {
	for _, d := range s.ix.Quarantined() {
		if err := s.pace(ctx); err != nil {
			return needRebuild
		}
		action, err := s.ix.RepairDoc(d)
		r := Repair{Doc: int64(d), Action: action.String()}
		switch {
		case err == nil:
			s.repairsDone.Add(1)
		case errors.Is(err, prix.ErrNeedsForestRebuild):
			needRebuild = true
			r.Err = err.Error()
		default:
			s.repairsFailed.Add(1)
			r.Err = err.Error()
		}
		rep.Repairs = append(rep.Repairs, r)
	}
	return needRebuild
}

// pace enforces the throttle, the busy backoff and cancellation.
func (s *Scrubber) pace(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for s.cfg.Busy != nil && s.cfg.Busy() {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(s.cfg.busyBackoff()):
		}
	}
	if t := s.cfg.throttle(); t > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(t):
		}
	}
	return nil
}
