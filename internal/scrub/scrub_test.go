package scrub

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/twig"
	"repro/internal/xmltree"
)

// scrubDocs mirrors the prix degradation suite: `//a/b` matches docs 0 and 1
// but not 2, so a quarantined document visibly shrinks the result set.
func scrubDocs() []*xmltree.Document {
	return []*xmltree.Document{
		xmltree.MustFromSExpr(0, `(a (b (c)))`),
		xmltree.MustFromSExpr(1, `(a (b (c)) (d))`),
		xmltree.MustFromSExpr(2, `(a (d (e)))`),
	}
}

func buildMem(t *testing.T) *prix.Index {
	t.Helper()
	ix, err := prix.Build(scrubDocs(), prix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// recordPage returns the first store page holding document records.
func recordPage(t *testing.T, ix *prix.Index) pager.PageID {
	t.Helper()
	f := ix.Store().BufferPool().File()
	for id := uint32(0); id < f.NumPages(); id++ {
		if len(ix.Store().DocsOnPage(pager.PageID(id))) > 0 {
			return pager.PageID(id)
		}
	}
	t.Fatal("no record pages")
	return 0
}

// resetIO drops the buffer pools so reads observe the on-disk (or in-MemFile)
// damage; retried because DropAll briefly fails while frames are pinned.
func resetIO(t *testing.T, ix *prix.Index) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ix.ResetIOStats(); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

func matchCount(t *testing.T, ix *prix.Index, q string, warm bool) int {
	t.Helper()
	ms, _, err := ix.Match(twig.MustParse(q), prix.MatchOptions{WarmCache: warm})
	if err != nil {
		t.Fatal(err)
	}
	return len(ms)
}

func TestScrubCleanPass(t *testing.T) {
	ix := buildMem(t)
	sc := New(ix, Config{Throttle: -1})
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("clean index not clean: %+v", rep)
	}
	if rep.PagesScanned == 0 || rep.DocsScanned != ix.NumDocs() {
		t.Fatalf("scanned %d pages, %d docs (want >0, %d)", rep.PagesScanned, rep.DocsScanned, ix.NumDocs())
	}
	if len(rep.Findings) != 0 || len(rep.Repairs) != 0 || rep.ForestRebuilt {
		t.Fatalf("clean pass reported work: %+v", rep)
	}
	st := sc.Stats()
	if st.Passes != 1 || st.Findings != 0 || int(st.DocsScanned) != ix.NumDocs() {
		t.Fatalf("stats: %+v", st)
	}
	if lr := sc.LastReport(); lr == nil || lr.Pass != rep.Pass {
		t.Fatalf("LastReport = %+v, want pass %d", lr, rep.Pass)
	}
}

func TestScrubStopWithoutStart(t *testing.T) {
	sc := New(buildMem(t), Config{})
	done := make(chan struct{})
	go func() { sc.Stop(); sc.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop without Start hung")
	}
}

func TestScrubDetectsAndRepairsRecordDamage(t *testing.T) {
	ix := buildMem(t)
	page := recordPage(t, ix)
	if err := pager.FlipBit(ix.Store().BufferPool().File(), page, (pager.PageHeaderSize+9)*8+1); err != nil {
		t.Fatal(err)
	}
	resetIO(t, ix)

	// Detection pass (no repair): the damage is found and quarantined, and
	// queries degrade instead of failing.
	sc := New(ix, Config{Throttle: -1})
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean {
		t.Fatal("pass over damaged index reported clean")
	}
	foundPage := false
	for _, f := range rep.Findings {
		if f.Kind == "page" && f.File == "docs.db" && f.Page == int64(page) {
			foundPage = true
		}
	}
	if !foundPage {
		t.Fatalf("no docs.db page finding for page %d: %+v", page, rep.Findings)
	}
	if len(rep.Quarantined) == 0 {
		t.Fatal("damaged documents not quarantined")
	}
	if n := matchCount(t, ix, `//a/b`, false); n > 2 {
		t.Fatalf("degraded query returned %d matches, want <= 2", n)
	}

	// Repair pass: records rewritten from the Prüfer sidecar, index clean,
	// full results restored.
	rep2, err := sc.RepairNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean {
		t.Fatalf("repair pass not clean: %+v", rep2)
	}
	rewritten := false
	for _, r := range rep2.Repairs {
		if r.Action == "record-rewritten" && r.Err == "" {
			rewritten = true
		}
	}
	if !rewritten {
		t.Fatalf("no successful record rewrite in %+v", rep2.Repairs)
	}
	if got := ix.Quarantined(); len(got) != 0 {
		t.Fatalf("still quarantined after repair: %v", got)
	}
	if n := matchCount(t, ix, `//a/b`, false); n != 2 {
		t.Fatalf("post-repair query = %d matches, want 2", n)
	}
	if st := sc.Stats(); st.RepairsDone == 0 {
		t.Fatalf("stats show no repairs: %+v", st)
	}
}

func TestScrubAutoRepairForestDamage(t *testing.T) {
	ix := buildMem(t)
	f := ix.Forest().BufferPool().File()
	if err := pager.FlipBit(f, pager.PageID(f.NumPages()-1), (pager.PageHeaderSize+3)*8); err != nil {
		t.Fatal(err)
	}
	resetIO(t, ix)

	sc := New(ix, Config{Throttle: -1, AutoRepair: true})
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ForestRebuilt {
		t.Fatalf("forest damage did not trigger a rebuild: %+v", rep)
	}
	if !rep.Clean {
		t.Fatalf("auto-repair pass not clean: %+v", rep)
	}
	if n := matchCount(t, ix, `//a/b`, false); n != 2 {
		t.Fatalf("post-rebuild query = %d matches, want 2", n)
	}
}

// TestScrubConcurrentStress runs the scrubber's background loop against live
// queries and live inserts on a DynamicIndex, under -race. Nothing is
// corrupted; the point is that continuous scrubbing is invisible to the
// workload.
func TestScrubConcurrentStress(t *testing.T) {
	di, err := prix.NewDynamicIndex(scrubDocs(), prix.Options{}, prix.DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()

	sc := New(di.Index(), Config{
		Interval:     time.Millisecond,
		Throttle:     -1,
		AutoRepair:   true,
		RepairForest: di.RepairForest,
	})
	sc.Start()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queryErr, insertErr atomic.Value
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := twig.MustParse(`//a/b`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := di.Match(q, prix.MatchOptions{WarmCache: true}); err != nil {
					queryErr.Store(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doc := xmltree.MustFromSExpr(100+i, `(a (b (c)) (d))`)
			if err := di.Insert(doc); err != nil {
				insertErr.Store(err)
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	sc.Stop()
	if err := queryErr.Load(); err != nil {
		t.Fatalf("query failed during scrub stress: %v", err)
	}
	if err := insertErr.Load(); err != nil {
		t.Fatalf("insert failed during scrub stress: %v", err)
	}
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("index not clean after stress: %+v", rep)
	}
}

// TestScrubBackgroundHealingE2E is the acceptance demo: a bit flip lands on a
// record page of an on-disk index; the background scrub loop detects it,
// quarantines, and repairs it online from the Prüfer redundancy — while
// queries keep running, none of them failing.
func TestScrubBackgroundHealingE2E(t *testing.T) {
	dir := t.TempDir()
	bix, err := prix.Build(scrubDocs(), prix.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	page := recordPage(t, bix)
	if err := bix.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit in the record page, on disk, past the page header.
	path := filepath.Join(dir, "docs.db")
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pager.PageSize)
	off := int64(page) * pager.PageSize
	if _, err := fh.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[pager.PageHeaderSize+13] ^= 0x10
	if _, err := fh.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err := prix.Open(dir, prix.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	sc := New(ix, Config{Interval: 2 * time.Millisecond, Throttle: -1, AutoRepair: true})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queryErr atomic.Value
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := twig.MustParse(`//a/b`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, _, err := ix.Match(q, prix.MatchOptions{WarmCache: true})
				if err != nil {
					queryErr.Store(err)
					return
				}
				if len(ms) > 2 {
					queryErr.Store(fmt.Errorf("query returned %d matches, want <= 2", len(ms)))
					return
				}
			}
		}()
	}
	sc.Start()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if rep := sc.LastReport(); rep != nil && rep.Clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrub loop never reached a clean pass; last report %+v", sc.LastReport())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	sc.Stop()

	if err := queryErr.Load(); err != nil {
		t.Fatalf("a query failed while the index self-healed: %v", err)
	}
	if st := sc.Stats(); st.RepairsDone == 0 && st.PagesRepaired == 0 {
		t.Fatalf("index became clean without any recorded repair: %+v", st)
	}
	if n := matchCount(t, ix, `//a/b`, false); n != 2 {
		t.Fatalf("post-heal query = %d matches, want 2", n)
	}
	for id := 0; id < ix.NumDocs(); id++ {
		if err := ix.VerifyDoc(uint32(id)); err != nil {
			t.Fatalf("doc %d still damaged: %v", id, err)
		}
	}
}
