// Package repro is a from-scratch Go reproduction of "PRIX: Indexing And
// Querying XML Using Prüfer Sequences" (Rao & Moon, ICDE 2004): the PRIX
// engine itself (internal/prix, surfaced through internal/core), the ViST
// and TwigStack/TwigStackXB baselines it is evaluated against, the storage
// substrates they share (pager, B+-trees, virtual trie, document store),
// synthetic versions of the paper's datasets, and a benchmark harness that
// regenerates every table and figure of the paper's evaluation. See
// README.md for a tour and DESIGN.md for the system inventory.
package repro
