// Command prixscrub is the standalone scrub/repair/snapshot tool for a
// PRIX index directory. Unlike prixcheck (which never touches the files),
// prixscrub opens the index for real — journal recovery runs first — and
// can heal damage in place using the same online-repair machinery the
// query service runs in the background.
//
// Usage:
//
//	prixscrub -index /tmp/idx                 # one scrub pass, report findings
//	prixscrub -index /tmp/idx -repair         # scrub and repair in place
//	prixscrub -index /tmp/idx -snapshot /bak  # consistent snapshot of the index
//	prixscrub -index /tmp/idx -restore /bak   # replace the index with a snapshot
//	prixscrub -index /tmp/idx -compact        # offline compaction into a packed epoch
//
// -compact rewrites a dynamic index's accumulated inserts into the packed
// bulk layout under a new epoch directory, committing via an atomic CURRENT
// pointer write. It resumes an interrupted compaction from its checkpoint
// (the tool is crash-safe: rerun it after a power cut), reports an
// already-compacted index as up to date, and on a sharded layout compacts
// every replica of every shard.
//
// Exit status: 0 when the index verifies clean (after repair, if requested),
// 1 when damage remains, 2 when the index cannot be opened.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixscrub: ")
	var (
		dir      = flag.String("index", "", "index directory (required)")
		repair   = flag.Bool("repair", false, "repair damage in place from the index's Prüfer redundancy")
		snapshot = flag.String("snapshot", "", "write a consistent snapshot of the index to this directory and exit")
		restore  = flag.String("restore", "", "replace the index files with the snapshot in this directory and exit")
		compact  = flag.Bool("compact", false, "compact the index offline into a packed epoch (resumes an interrupted compaction) and exit")
		budget   = flag.Int64("compact-budget", 0, "compaction memory budget in bytes (default 32 MiB)")
		jsonOut  = flag.Bool("json", false, "print the pass report as JSON")
	)
	flag.Parse()
	if *dir == "" {
		log.Print("usage: prixscrub -index DIR [-repair | -snapshot DEST | -restore SRC]")
		os.Exit(2)
	}
	if *restore != "" {
		// Restore never opens the index: it must work precisely when the
		// index is too damaged to open.
		if err := core.RestoreSnapshot(*dir, *restore); err != nil {
			log.Fatal(err)
		}
		log.Printf("restored %s from %s", *dir, *restore)
		return
	}

	if *compact {
		var reps []*core.CompactionReport
		var err error
		if _, terr := core.LoadShardTopology(*dir); terr == nil {
			reps, err = core.ResumeOrCompactShardedIndex(*dir, core.CompactionOptions{MemBudget: *budget})
		} else {
			var rep *core.CompactionReport
			rep, err = core.ResumeOrCompactIndex(core.CompactionOptions{Dir: *dir, MemBudget: *budget})
			reps = []*core.CompactionReport{rep}
		}
		if err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(reps)
			return
		}
		for _, rep := range reps {
			if rep.Skipped {
				fmt.Printf("compact: %s already compacted (epoch %d), skipped\n", rep.Dir, rep.Epoch)
				continue
			}
			fmt.Printf("compact: %d docs -> %s (epoch %d, %d runs, %d run bytes, %v)\n",
				rep.Docs, rep.Dir, rep.Epoch, rep.Runs, rep.RunBytes, rep.Elapsed)
		}
		return
	}

	// A compacted layout keeps its files under an epoch subdirectory;
	// follow the CURRENT pointer before opening.
	resolved, err := core.ResolveIndexDir(*dir)
	if err != nil {
		log.Printf("resolve: %v", err)
		os.Exit(2)
	}
	ix, err := core.OpenIndex(resolved, core.Options{})
	if err != nil {
		log.Printf("open: %v (a snapshot restore may be needed: prixscrub -index %s -restore SNAPDIR)", err, *dir)
		os.Exit(2)
	}

	if *snapshot != "" {
		if err := ix.Snapshot(*snapshot); err != nil {
			ix.Close()
			log.Fatal(err)
		}
		if err := ix.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("snapshot of %s written to %s", *dir, *snapshot)
		return
	}

	sc := core.NewScrubber(ix, core.ScrubConfig{Throttle: -1, AutoRepair: *repair})
	rep, err := sc.RunPass(context.Background())
	if err != nil {
		ix.Close()
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Printf("pass: %d pages scanned, %d docs scanned, %d findings, %d pages repaired, %d doc repairs, forest rebuilt: %v\n",
			rep.PagesScanned, rep.DocsScanned, len(rep.Findings), rep.PagesRepaired, len(rep.Repairs), rep.ForestRebuilt)
		for _, f := range rep.Findings {
			fmt.Printf("finding: kind=%s file=%s page=%d doc=%d: %s\n", f.Kind, f.File, f.Page, f.Doc, f.Err)
		}
		for _, r := range rep.Repairs {
			if r.Err != "" {
				fmt.Printf("repair: doc=%d action=%s error=%s\n", r.Doc, r.Action, r.Err)
			} else {
				fmt.Printf("repair: doc=%d action=%s\n", r.Doc, r.Action)
			}
		}
		if len(rep.Quarantined) > 0 {
			fmt.Printf("quarantined: %v (restore from a snapshot to recover these)\n", rep.Quarantined)
		}
	}
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
	if !rep.Clean {
		os.Exit(1)
	}
	fmt.Println("prixscrub: clean")
}
