// Command prixbench regenerates the paper's evaluation artefacts (Tables
// 2-9, Figure 6) and the ablation studies over the synthetic datasets.
//
// Usage:
//
//	prixbench -table all -scale 1
//	prixbench -table 4            # DBLP: PRIX vs ViST
//	prixbench -table fig6
//	prixbench -table ablation
//	prixbench -table serving -serve-clients 16   # concurrent QPS/latency
//	prixbench -table parallel -parallelism 4     # pipelined vs serial, cold I/O
//	prixbench -table parallel -datasets DBLP     # smoke-sized variant
//	prixbench -table shards -replicas 2          # scatter-gather throughput scaling
//	prixbench -table ingest                      # streaming bulk-load MB/s, peak heap, resume cost
//	prixbench -table compact                     # online compaction: query speedup, pause, write amp
//	prixbench -table versions                    # update vs delete+reinsert: patch bytes, latency
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixbench: ")
	var (
		table     = flag.String("table", "all", "artefact: 2..9, fig6, ablation, serving, parallel, stages, shards, ingest, compact, versions or all")
		scale     = flag.Int("scale", 1, "dataset scale factor")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		pool      = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		clients   = flag.Int("serve-clients", 0, "serving bench: concurrent clients (default 8)")
		requests  = flag.Int("serve-requests", 0, "serving bench: total requests per dataset (default 2000)")
		par       = flag.Int("parallelism", 4, "parallel/serving bench: query worker cap compared against serial")
		ioDelay   = flag.Duration("iodelay", 2*time.Millisecond, "parallel bench: injected per-page read latency (2004-era disk)")
		datasets  = flag.String("datasets", "", "parallel/shards bench: comma-separated dataset subset (default all)")
		replicas  = flag.Int("replicas", 1, "shards bench: replicas per shard")
		sizes     = flag.String("ingest-sizes", "", "ingest bench: comma-separated corpus sizes in MB (default 8,24,72)")
		memBudget = flag.Int("ingest-budget", 0, "ingest bench: memory budget in MB (default 8)")
		hotBudget = flag.Int64("hot-budget", 0, "stages bench: compressed hot-tier bytes for the hot pass (default 8 MiB; negative skips it)")
	)
	flag.Parse()
	s := bench.NewSession(bench.Config{Scale: *scale, Seed: *seed, PoolPages: *pool})
	w := os.Stdout
	run := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	switch *table {
	case "2":
		run(s.Table2(w))
	case "3":
		run(s.Table3(w))
	case "4":
		run(s.Table4(w))
	case "5":
		run(s.Table5(w))
	case "6":
		run(s.Table6(w))
	case "7":
		run(s.Table7(w))
	case "8":
		run(s.Table8(w))
	case "9":
		run(s.Table9(w))
	case "fig6", "figure6":
		run(s.Figure6(w))
	case "ablation":
		run(s.AblationMaxGap(w))
		run(s.AblationExtended(w))
		run(s.AblationBottomUp(w))
		run(s.AblationPoolSize(w))
		run(s.AblationCardinality(w))
	case "serving":
		run(s.Serving(w, bench.ServingConfig{Goroutines: *clients, Requests: *requests, Parallelism: *par}))
	case "parallel":
		var names []string
		if *datasets != "" {
			names = strings.Split(*datasets, ",")
		}
		run(s.Parallel(w, bench.ParallelConfig{Parallelism: *par, ReadDelay: *ioDelay, Datasets: names}))
	case "stages":
		var names []string
		if *datasets != "" {
			names = strings.Split(*datasets, ",")
		}
		run(s.Stages(w, bench.StagesConfig{Datasets: names, HotBudget: *hotBudget}))
	case "shards":
		var names []string
		if *datasets != "" {
			names = strings.Split(*datasets, ",")
		}
		run(s.Shards(w, bench.ShardsConfig{
			Goroutines: *clients,
			Requests:   *requests,
			Replicas:   *replicas,
			Datasets:   names,
		}))
	case "compact":
		var names []string
		if *datasets != "" {
			names = strings.Split(*datasets, ",")
		}
		run(s.CompactBench(w, bench.CompactBenchConfig{Datasets: names}))
	case "versions":
		var names []string
		if *datasets != "" {
			names = strings.Split(*datasets, ",")
		}
		run(s.VersionsBench(w, bench.VersionsBenchConfig{Datasets: names}))
	case "ingest":
		var mbs []int
		if *sizes != "" {
			for _, part := range strings.Split(*sizes, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || n < 1 {
					log.Fatalf("-ingest-sizes: bad size %q", part)
				}
				mbs = append(mbs, n)
			}
		}
		run(s.IngestBench(w, bench.IngestConfig{SizesMB: mbs, MemBudgetMB: *memBudget}))
	case "all":
		run(s.All(w))
	default:
		fmt.Fprintf(os.Stderr, "unknown artefact %q\n", *table)
		os.Exit(2)
	}
}
