// Command prixcheck is the offline integrity verifier for a PRIX index
// directory. It never modifies the files it inspects: both page files and
// their journals are copied into memory, pending journal rollbacks are
// replayed against the copies, and every check runs on the recovered image.
//
// Checks, bottom-up:
//   - every physical page's checksum, format version and page id;
//   - every B+-tree invariant in the forest (key order, uniform leaf
//     depth, separator bracketing, no cycles, entry counts);
//   - every document-store record decodes;
//   - on a versioned index, the MVCC version map: internal interval
//     invariants, every docid-tree tombstone matched by a closed interval
//     (and vice versa), and every superseded-record back-pointer resolving
//     to a decodable image.
//
// With -repair, a corrupt index is opened for real (journal recovery runs
// against the files) and one scrub repair pass heals what the index's
// built-in Prüfer redundancy can reconstruct: records are rewritten from
// the trie side, postings from the record side, the forest rebuilt when
// shared trie structure is damaged. The read-only checks then run again and
// the exit status reflects the post-repair state.
//
// Exit status: 0 clean, 1 corruption found, 2 files unreadable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/btree"
	"repro/internal/compact"
	"repro/internal/docstore"
	"repro/internal/mvcc"
	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/scrub"
)

const (
	exitClean      = 0
	exitCorrupt    = 1
	exitUnreadable = 2
)

func main() {
	verbose := flag.Bool("v", false, "print every finding, not just the summary")
	repair := flag.Bool("repair", false, "repair corruption in place using the index's Prüfer redundancy, then re-verify")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prixcheck [-v] [-repair] <index-dir>\n\n")
		fmt.Fprintf(os.Stderr, "Verifies the page files of a PRIX index directory offline.\n")
		fmt.Fprintf(os.Stderr, "With -repair, heals what the surviving structures determine and re-verifies.\n")
		fmt.Fprintf(os.Stderr, "Exit status: 0 clean, 1 corruption found, 2 unreadable.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(exitUnreadable)
	}
	// A compacted directory holds only a CURRENT pointer to the live
	// epoch; plain directories resolve to themselves.
	dir, err := compact.ResolveDir(flag.Arg(0))
	if err != nil {
		fmt.Printf("prixcheck: %v\n", err)
		os.Exit(exitUnreadable)
	}
	status := run(dir, *verbose)
	if status == exitCorrupt && *repair {
		if err := runRepair(dir); err != nil {
			fmt.Printf("prixcheck: repair: %v\n", err)
			os.Exit(exitCorrupt)
		}
		fmt.Println("prixcheck: repair pass complete, re-verifying")
		status = run(dir, *verbose)
	}
	os.Exit(status)
}

// runRepair opens the index read-write (journal recovery runs first) and
// executes one scrub pass with repair forced.
func runRepair(dir string) error {
	ix, err := prix.Open(dir, prix.Options{})
	if err != nil {
		return err
	}
	sc := scrub.New(ix, scrub.Config{Throttle: -1})
	rep, err := sc.RepairNow(context.Background())
	if err != nil {
		ix.Close()
		return err
	}
	fmt.Printf("prixcheck: repair: %d pages repaired, %d doc repairs, forest rebuilt: %v, still quarantined: %v\n",
		rep.PagesRepaired, len(rep.Repairs), rep.ForestRebuilt, rep.Quarantined)
	return ix.Close()
}

func run(dir string, verbose bool) int {
	worst := exitClean
	report := func(status int) {
		if status > worst {
			worst = status
		}
	}

	forest := checkFile(dir, "seq.idx", "seq.jnl", verbose, report)
	docs := checkFile(dir, "docs.db", "docs.jnl", verbose, report)

	if forest != nil {
		checkForest(forest, verbose, report)
	}
	if docs != nil {
		checkDocs(docs, verbose, report)
	}
	if forest != nil && docs != nil {
		checkVersions(forest, docs, verbose, report)
	}

	switch worst {
	case exitClean:
		fmt.Println("prixcheck: clean")
	case exitCorrupt:
		fmt.Println("prixcheck: CORRUPT")
	default:
		fmt.Println("prixcheck: unreadable")
	}
	return worst
}

// checkFile loads one page file plus its journal into memory, rolls back
// any pending transaction on the copy, and checksum-verifies every page.
// It returns the recovered in-memory image for structural checks (nil when
// the file could not be read at all).
func checkFile(dir, name, journalName string, verbose bool, report func(int)) *pager.MemFile {
	path := filepath.Join(dir, name)
	mem, torn, err := loadFile(path)
	if err != nil {
		fmt.Printf("%s: unreadable: %v\n", name, err)
		report(exitUnreadable)
		return nil
	}
	if torn > 0 {
		// A torn trailing page is what a crash mid-append leaves behind; it
		// is only corruption if the journal cannot roll it back.
		fmt.Printf("%s: torn trailing page (%d stray bytes)\n", name, torn)
	}

	jpath := filepath.Join(dir, journalName)
	if jmem, _, jerr := loadFile(jpath); jerr == nil && jmem.NumPages() > 0 {
		j, err := pager.NewJournal(jmem)
		if err != nil {
			fmt.Printf("%s: journal unreadable: %v\n", journalName, err)
			report(exitUnreadable)
		} else if j.Active() {
			before := mem.NumPages()
			if _, err := j.Recover(mem); err != nil {
				fmt.Printf("%s: rollback failed: %v\n", journalName, err)
				report(exitCorrupt)
			} else {
				fmt.Printf("%s: pending transaction, rolled back in memory (%d -> %d pages); reopen the index to persist recovery\n",
					journalName, before, mem.NumPages())
			}
		}
	} else if jerr != nil && !os.IsNotExist(jerr) {
		fmt.Printf("%s: unreadable: %v\n", journalName, jerr)
		report(exitUnreadable)
	}

	bad := 0
	var buf [pager.PageSize]byte
	for id := uint32(0); id < mem.NumPages(); id++ {
		if err := mem.ReadPage(pager.PageID(id), buf[:]); err != nil {
			fmt.Printf("%s: page %d: %v\n", name, id, err)
			report(exitUnreadable)
			continue
		}
		if err := pager.VerifyPage(pager.PageID(id), buf[:]); err != nil {
			bad++
			if verbose {
				fmt.Printf("%s: %v\n", name, err)
			}
			report(exitCorrupt)
		}
	}
	if bad > 0 {
		fmt.Printf("%s: %d of %d pages fail verification\n", name, bad, mem.NumPages())
	} else {
		fmt.Printf("%s: %d pages, checksums ok\n", name, mem.NumPages())
	}
	return mem
}

// loadFile copies a file into a MemFile, padding a torn trailing page with
// zeros. The returned int is the number of stray bytes past the last full
// page boundary (0 for a well-formed file).
func loadFile(path string) (*pager.MemFile, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	mem := pager.NewMemFile()
	torn := len(data) % pager.PageSize
	for off := 0; off < len(data); off += pager.PageSize {
		id, err := mem.Allocate()
		if err != nil {
			return nil, 0, err
		}
		var page [pager.PageSize]byte
		copy(page[:], data[off:])
		if err := mem.WritePage(id, page[:]); err != nil {
			return nil, 0, err
		}
	}
	return mem, torn, nil
}

// checkForest opens the B+-tree forest over the recovered image and runs
// the full structural invariant check.
func checkForest(mem *pager.MemFile, verbose bool, report func(int)) {
	bp := pager.NewBufferPool(mem, pager.DefaultPoolPages)
	forest, err := btree.Open(bp)
	if err != nil {
		fmt.Printf("seq.idx: forest directory: %v\n", err)
		report(exitCorrupt)
		return
	}
	errs := forest.Check()
	if len(errs) == 0 {
		fmt.Printf("seq.idx: %d trees, invariants ok\n", len(forest.Names()))
		return
	}
	fmt.Printf("seq.idx: %d invariant violations\n", len(errs))
	if verbose {
		for _, e := range errs {
			fmt.Printf("seq.idx: %v\n", e)
		}
	}
	report(exitCorrupt)
}

// checkVersions cross-checks the MVCC version map (the docstore "mvcc"
// blob) against the rest of the recovered image: the map's own interval
// invariants, the docid-tree tombstones (a tombstone with no matching
// closed interval is dangling; a tombstoned interval with no tombstone
// left the forest and the map disagreeing about a delete), and every
// superseded-record back-pointer, which must resolve to a decodable image
// or AS OF reads of that version would fail. Unversioned indexes (no blob)
// skip silently; open failures are already reported by the structural
// checks above.
func checkVersions(forestMem, docsMem *pager.MemFile, verbose bool, report func(int)) {
	store, err := docstore.Open(pager.NewBufferPool(docsMem, pager.DefaultPoolPages))
	if err != nil {
		return
	}
	enc := store.Blob(prix.VersionsBlobName)
	if enc == nil {
		return
	}
	m, err := mvcc.DecodeMap(enc)
	if err != nil {
		fmt.Printf("versions: map undecodable: %v\n", err)
		report(exitCorrupt)
		return
	}
	if err := m.Check(); err != nil {
		fmt.Printf("versions: %v\n", err)
		report(exitCorrupt)
		return
	}
	if m.Pending != nil {
		// A mutation crashed between its store and forest commits; the
		// cross-checks below would see the half-applied state. Recovery at
		// the next open redoes the forest side idempotently.
		fmt.Printf("versions: pending mutation of document %d (version %d); reopen the index to complete recovery\n",
			m.Pending.DocID, m.Pending.Version)
		return
	}

	forest, err := btree.Open(pager.NewBufferPool(forestMem, pager.DefaultPoolPages))
	if err != nil {
		return
	}
	docid, err := forest.Tree("docid")
	if err != nil {
		// An index built before the docid tree existed cannot be versioned;
		// a versioned one missing it is already flagged by checkForest.
		return
	}
	tombs := map[uint32]uint64{}
	scanErr := docid.Scan(btree.KeyUint64(0), btree.KeyUint64(^uint64(0)), true, true, func(k, v []byte) bool {
		if id, ver, ok := prix.DecodeTombstone(v); ok {
			tombs[id] = ver
		}
		return true
	})
	if scanErr != nil {
		fmt.Printf("versions: docid scan: %v\n", scanErr)
		report(exitCorrupt)
		return
	}

	bad := 0
	flag := func(format string, args ...any) {
		bad++
		if verbose {
			fmt.Printf("versions: "+format+"\n", args...)
		}
		report(exitCorrupt)
	}
	for id, ver := range tombs {
		ivs := m.Docs[id]
		if len(ivs) == 0 {
			flag("dangling tombstone: document %d (version %d) has no version intervals", id, ver)
			continue
		}
		last := ivs[len(ivs)-1]
		if last.To == 0 || last.Marker() || last.To != ver {
			flag("dangling tombstone: document %d marked deleted at version %d but its map interval is [%d,%d)", id, ver, last.From, last.To)
		}
	}
	locs := 0
	for id, ivs := range m.Docs {
		if len(ivs) == 0 {
			continue
		}
		last := ivs[len(ivs)-1]
		if last.To != 0 && !last.Marker() {
			if _, ok := tombs[id]; !ok {
				// Sequence-less documents (no symbols) have no docid entry
				// to mark; their stored record carries an empty LPS.
				if rec, err := store.Get(id); err != nil || len(rec.LPS) > 0 {
					flag("missing tombstone: document %d deleted at version %d in the map but live in the docid tree", id, last.To)
				}
			}
		}
		for _, iv := range ivs {
			if iv.Loc.Zero() {
				continue
			}
			locs++
			loc := docstore.Loc{Page: pager.PageID(iv.Loc.Page), Off: iv.Loc.Off, Len: iv.Loc.Len}
			if _, err := store.GetAtLoc(id, loc); err != nil {
				flag("document %d version %d: superseded image unreachable at page %d: %v", id, iv.From, iv.Loc.Page, err)
			}
		}
	}
	if bad > 0 {
		fmt.Printf("versions: %d invariant violations (%d documents, %d tombstones)\n", bad, len(m.Docs), len(tombs))
		return
	}
	fmt.Printf("versions: %d documents at version %d, %d tombstones, %d superseded images, invariants ok\n",
		len(m.Docs), m.Counter, len(tombs), locs)
}

// checkDocs opens the document store over the recovered image and decodes
// every record.
func checkDocs(mem *pager.MemFile, verbose bool, report func(int)) {
	bp := pager.NewBufferPool(mem, pager.DefaultPoolPages)
	store, err := docstore.Open(bp)
	if err != nil {
		fmt.Printf("docs.db: store catalog: %v\n", err)
		report(exitCorrupt)
		return
	}
	bad := store.Verify()
	if len(bad) == 0 {
		fmt.Printf("docs.db: %d documents, records ok\n", store.NumDocs())
		return
	}
	ids := make([]uint32, 0, len(bad))
	for id := range bad {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Printf("docs.db: %d of %d documents fail to decode\n", len(bad), store.NumDocs())
	if verbose {
		for _, id := range ids {
			fmt.Printf("docs.db: document %d: %v\n", id, bad[id])
		}
	}
	report(exitCorrupt)
}
