package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pager"
	"repro/internal/prix"
	"repro/internal/xmltree"
)

func buildIndexDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	docs := []*xmltree.Document{
		xmltree.MustFromSExpr(0, `(a (b (c)))`),
		xmltree.MustFromSExpr(1, `(a (d (e)))`),
	}
	ix, err := prix.Build(docs, prix.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCleanIndexExitsZero(t *testing.T) {
	dir := buildIndexDir(t)
	if got := run(dir, true); got != exitClean {
		t.Errorf("run = %d, want %d", got, exitClean)
	}
}

func TestBitFlipExitsCorrupt(t *testing.T) {
	dir := buildIndexDir(t)
	f, err := os.OpenFile(filepath.Join(dir, "docs.db"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(pager.PageHeaderSize + 21)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 1
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := run(dir, true); got != exitCorrupt {
		t.Errorf("run = %d, want %d", got, exitCorrupt)
	}
}

func TestTornTrailingPageExitsCorrupt(t *testing.T) {
	dir := buildIndexDir(t)
	// Keep only 100 bytes of seq.idx: a torn page whose lost tail held real
	// data, with no journal to roll it back. The zero-padded reconstruction
	// cannot match the stored checksum.
	if err := os.Truncate(filepath.Join(dir, "seq.idx"), 100); err != nil {
		t.Fatal(err)
	}
	if got := run(dir, true); got != exitCorrupt {
		t.Errorf("run = %d, want %d", got, exitCorrupt)
	}
}

func TestMissingDirExitsUnreadable(t *testing.T) {
	if got := run(filepath.Join(t.TempDir(), "nope"), false); got != exitUnreadable {
		t.Errorf("run = %d, want %d", got, exitUnreadable)
	}
}
