// Command prixserve serves twig queries over a persistent PRIX index as an
// HTTP service: POST /query executes an XPath-subset query, GET /healthz,
// GET /metrics (Prometheus text) and GET /stats expose service health,
// GET /scrub reports the background integrity scrubber and POST /repair
// runs an online repair pass without restarting the server. Per-query
// observability: POST /query?trace=1 returns the execution span tree,
// GET /debug/slowlog serves the slow-query ring buffer and /debug/pprof/
// exposes the runtime profiler.
//
// A dynamic (insertable) index is served through a compaction root:
// -compact-interval runs a rate-limited background pass that rewrites the
// accumulated inserts into the packed bulk layout and swaps epochs with
// zero downtime (queries never pause; inserts pause only for the final
// catch-up window), and POST /compact forces a pass. Startup finishes any
// compaction a crash interrupted before serving.
//
// When -index points at a sharded layout (a directory holding the
// topology.json written by prixload -shards), prixserve serves it through
// the scatter-gather coordinator: queries fan out to every shard
// concurrently, results merge into exactly the single-index order, and a
// quarantined or dead shard degrades alone — the response is partial with
// X-Prix-Degraded naming the shard, never a 500. Each shard replica gets
// its own scrubber, so /scrub and /repair cover the whole fleet.
//
// Usage:
//
//	prixserve -index /tmp/idx -addr :8080
//	prixserve -index /tmp/sharded -replicas 2 -hedge 50ms
//	curl -s localhost:8080/query -d '//inproceedings[./year="1990"]/title'
//	curl -s localhost:8080/query -d '{"query": "//a[./b]/c", "timeout_ms": 100}'
//
// SIGINT/SIGTERM triggers a graceful shutdown: new queries are refused with
// 503 while in-flight ones run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixserve: ")
	var (
		dir       = flag.String("index", "", "index directory (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (default 64; excess gets 429)")
		timeout   = flag.Duration("timeout", 0, "default per-query deadline (default 2s; negative = none)")
		maxTO     = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (default 30s)")
		cacheCap  = flag.Int("cache", 0, "result cache entries (default 1024; negative disables)")
		shards    = flag.Int("cache-shards", 0, "result cache shards (default 16)")
		maxMatch  = flag.Int("max-matches", 0, "max matches serialized per response (default 1000)")
		pool      = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		par       = flag.Int("parallelism", 0, "default per-query worker cap (0 = GOMAXPROCS, 1 = serial; requests may override)")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
		scrubIv   = flag.Duration("scrub-interval", 30*time.Second, "background scrub pass interval (0 disables the scrubber)")
		scrubFix  = flag.Bool("scrub-repair", true, "let scrub passes repair damage automatically (POST /repair works either way)")
		slowCap   = flag.Int("slowlog", 0, "slow-query ring buffer entries at GET /debug/slowlog (default 64; negative disables)")
		slowAfter = flag.Duration("slowlog-threshold", 0, "log queries at or above this elapsed time (default 100ms; negative logs all)")
		noTrace   = flag.Bool("no-tracing", false, "disable per-query span collection (stage histograms, slowlog traces, ?trace=1)")
		noPprof   = flag.Bool("no-pprof", false, "remove the net/http/pprof handlers from /debug/pprof/")
		replicas  = flag.Int("replicas", 0, "replicas to open per shard on a sharded layout (0 = all in the topology)")
		hedge     = flag.Duration("hedge", 0, "launch a backup replica read after this delay (sharded layout; 0 disables hedging)")
		shardInfl = flag.Int("shard-inflight", 0, "max concurrently executing queries per shard (default 64)")
		retryN    = flag.Int("retry-budget", 0, "total replica attempts per query on a sharded layout (0 = one per replica)")
		retryBase = flag.Duration("retry-backoff", 5*time.Millisecond, "base backoff before the second replica attempt (doubles, jittered)")
		retryMax  = flag.Duration("retry-backoff-max", 250*time.Millisecond, "cap on the exponential replica backoff")
		compactIv = flag.Duration("compact-interval", 0, "background compaction pass interval on a dynamic index (0 disables the loop; POST /compact still works)")
		compactMB = flag.Int64("compact-budget", 0, "compaction memory budget in bytes (default 32 MiB)")
		hotBudget = flag.Int64("hot-budget", 0, "compressed in-memory hot tier budget in bytes (0 disables; results stay byte-identical)")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("usage: prixserve -index DIR [-addr :8080]")
	}
	// A topology.json in the index directory selects the sharded serving
	// tier; otherwise the directory is a plain single index — served
	// through a compaction root when it is dynamic (insertable), read-only
	// otherwise. All three satisfy the same QuerySource contract, so
	// everything below is shared.
	var (
		src      core.QuerySource
		indexes  []*core.Index
		root     *core.CompactRoot
		topoNote string
	)
	if topo, err := core.LoadShardTopology(*dir); err == nil {
		co, err := core.OpenShardedIndex(*dir, core.Options{BufferPoolPages: *pool, HotBudget: *hotBudget}, core.ShardConfig{
			MaxInFlightPerShard: *shardInfl,
			HedgeDelay:          *hedge,
			OpenReplicas:        *replicas,
			// Compacted replicas keep their files under an epoch
			// subdirectory; the resolver follows each CURRENT pointer.
			ResolveDir: core.ResolveIndexDir,
			Retry:      core.RetryPolicy{Base: *retryBase, Max: *retryMax, Budget: *retryN},
		})
		if err != nil {
			log.Fatal(err)
		}
		src = co
		indexes = co.Indexes()
		topoNote = fmt.Sprintf(" across %d shards (%d replicas open, epoch %d)",
			topo.Shards, len(indexes), topo.Epoch)
	} else if errors.Is(err, core.ErrNoTopology) {
		// OpenCompactRoot finishes any compaction a crash interrupted, then
		// follows the epoch pointer and serves the index insertable with
		// zero-downtime epoch swaps. A bulk-built index without dynamic
		// labeler state falls back to the plain read-only path.
		r, err := core.OpenCompactRoot(*dir, core.Options{BufferPoolPages: *pool, HotBudget: *hotBudget})
		switch {
		case err == nil:
			root = r
			src = r
			indexes = []*core.Index{r.Index().Index()}
			if e := r.Epoch(); e > 0 {
				topoNote = fmt.Sprintf(" (compaction epoch %d)", e)
			}
		case errors.Is(err, core.ErrNotDynamic):
			resolved, rerr := core.ResolveIndexDir(*dir)
			if rerr != nil {
				log.Fatal(rerr)
			}
			ix, oerr := core.OpenIndex(resolved, core.Options{BufferPoolPages: *pool, HotBudget: *hotBudget})
			if oerr != nil {
				log.Fatal(oerr)
			}
			src = ix
			indexes = []*core.Index{ix}
		default:
			log.Fatal(err)
		}
	} else {
		log.Fatal(err)
	}
	srv := core.NewServer(src, core.ServerConfig{
		MaxInFlight:      *inflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTO,
		CacheCapacity:    *cacheCap,
		CacheShards:      *shards,
		MaxMatches:       *maxMatch,
		Parallelism:      *par,
		SlowLogCapacity:  *slowCap,
		SlowLogThreshold: *slowAfter,
		DisableTracing:   *noTrace,
		DisablePprof:     *noPprof,
	})
	capVal := *inflight
	if capVal <= 0 {
		capVal = 64
	}
	// Back off while the query load uses more than half the admission
	// capacity; background maintenance (scrubbing, compaction) is strictly
	// lower priority than serving.
	busy := func() bool {
		return srv.Metrics().InFlight.Load() > int64(capVal/2)
	}
	var scrubbers []*core.Scrubber
	if *scrubIv > 0 {
		// On a sharded layout each replica index scrubs (and heals)
		// independently.
		for _, ix := range indexes {
			cfg := core.ScrubConfig{
				Interval:   *scrubIv,
				AutoRepair: *scrubFix,
				Busy:       busy,
			}
			if root != nil {
				// Behind a compaction root the scrubber re-resolves the
				// serving epoch each pass and skips passes that collide
				// with an epoch swap instead of flagging mid-swap files.
				cfg.Source = func() *core.Index { return root.Index().Index() }
				cfg.Gate = root.Gate()
			}
			sc := core.NewScrubber(ix, cfg)
			scrubbers = append(scrubbers, sc)
			sc.Start()
		}
		srv.SetScrubbers(scrubbers)
	}
	var compactor *core.Compactor
	if root != nil {
		compactor = core.NewCompactor(root, core.CompactorConfig{
			Interval:  *compactIv,
			MemBudget: *compactMB,
			Busy:      busy,
		})
		if *compactIv > 0 {
			compactor.Start()
		}
		srv.SetCompactor(compactor)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("caught %v; draining (max %v)", s, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		for _, sc := range scrubbers {
			sc.Stop()
		}
		if compactor != nil {
			compactor.Stop()
		}
		if root != nil {
			if err := root.Close(); err != nil {
				log.Printf("close: %v", err)
			}
		}
	}()

	log.Printf("serving %d docs (extended=%v)%s on %s", src.NumDocs(), src.Extended(), topoNote, *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("bye")
}
