// Command prixserve serves twig queries over a persistent PRIX index as an
// HTTP service: POST /query executes an XPath-subset query, GET /healthz,
// GET /metrics (Prometheus text) and GET /stats expose service health,
// GET /scrub reports the background integrity scrubber and POST /repair
// runs an online repair pass without restarting the server. Per-query
// observability: POST /query?trace=1 returns the execution span tree,
// GET /debug/slowlog serves the slow-query ring buffer and /debug/pprof/
// exposes the runtime profiler.
//
// Usage:
//
//	prixserve -index /tmp/idx -addr :8080
//	curl -s localhost:8080/query -d '//inproceedings[./year="1990"]/title'
//	curl -s localhost:8080/query -d '{"query": "//a[./b]/c", "timeout_ms": 100}'
//
// SIGINT/SIGTERM triggers a graceful shutdown: new queries are refused with
// 503 while in-flight ones run to completion (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixserve: ")
	var (
		dir       = flag.String("index", "", "index directory (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		inflight  = flag.Int("max-inflight", 0, "max concurrently executing queries (default 64; excess gets 429)")
		timeout   = flag.Duration("timeout", 0, "default per-query deadline (default 2s; negative = none)")
		maxTO     = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (default 30s)")
		cacheCap  = flag.Int("cache", 0, "result cache entries (default 1024; negative disables)")
		shards    = flag.Int("cache-shards", 0, "result cache shards (default 16)")
		maxMatch  = flag.Int("max-matches", 0, "max matches serialized per response (default 1000)")
		pool      = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		par       = flag.Int("parallelism", 0, "default per-query worker cap (0 = GOMAXPROCS, 1 = serial; requests may override)")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
		scrubIv   = flag.Duration("scrub-interval", 30*time.Second, "background scrub pass interval (0 disables the scrubber)")
		scrubFix  = flag.Bool("scrub-repair", true, "let scrub passes repair damage automatically (POST /repair works either way)")
		slowCap   = flag.Int("slowlog", 0, "slow-query ring buffer entries at GET /debug/slowlog (default 64; negative disables)")
		slowAfter = flag.Duration("slowlog-threshold", 0, "log queries at or above this elapsed time (default 100ms; negative logs all)")
		noTrace   = flag.Bool("no-tracing", false, "disable per-query span collection (stage histograms, slowlog traces, ?trace=1)")
		noPprof   = flag.Bool("no-pprof", false, "remove the net/http/pprof handlers from /debug/pprof/")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("usage: prixserve -index DIR [-addr :8080]")
	}
	ix, err := core.OpenIndex(*dir, core.Options{BufferPoolPages: *pool})
	if err != nil {
		log.Fatal(err)
	}
	srv := core.NewServer(ix, core.ServerConfig{
		MaxInFlight:      *inflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTO,
		CacheCapacity:    *cacheCap,
		CacheShards:      *shards,
		MaxMatches:       *maxMatch,
		Parallelism:      *par,
		SlowLogCapacity:  *slowCap,
		SlowLogThreshold: *slowAfter,
		DisableTracing:   *noTrace,
		DisablePprof:     *noPprof,
	})
	var sc *core.Scrubber
	if *scrubIv > 0 {
		capVal := *inflight
		if capVal <= 0 {
			capVal = 64
		}
		sc = core.NewScrubber(ix, core.ScrubConfig{
			Interval:   *scrubIv,
			AutoRepair: *scrubFix,
			// Back off while the query load uses more than half the
			// admission capacity; scrubbing is strictly lower priority.
			Busy: func() bool {
				return srv.Metrics().InFlight.Load() > int64(capVal/2)
			},
		})
		srv.SetScrubber(sc)
		sc.Start()
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("caught %v; draining (max %v)", s, *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		if sc != nil {
			sc.Stop()
		}
	}()

	log.Printf("serving %d docs (extended=%v) on %s", ix.NumDocs(), ix.Extended(), *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("bye")
}
