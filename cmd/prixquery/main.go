// Command prixquery runs twig queries against a persistent PRIX index
// built by prixload. Queries run through the same execution path as the
// prixserve HTTP service (core.Executor), so deadlines and options behave
// identically in both entry points.
//
// Usage:
//
//	prixquery -index /tmp/idx '//inproceedings[./author="Jim Gray"][./year="1990"]'
//	prixquery -index /tmp/idx -unordered -count '//a[./c]/b'
//
// When -index points at a sharded layout (prixload -shards), the query
// fans out through the scatter-gather coordinator. A degraded answer —
// any shard quarantined or down, so matches may be missing — exits 1, not
// 0, and names the degraded shards on stderr; with -trace the span tree
// shows the per-shard fan-out and which replica attempts degraded.
//
// Exit codes: 0 success, 1 execution failure (I/O, deadline, engine error)
// or a degraded (partial) answer, 2 usage or query-parse error. All
// diagnostics go to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
)

const (
	exitOK    = 0
	exitError = 1 // execution failed: I/O, deadline, engine error
	exitUsage = 2 // bad invocation or unparsable query
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fail := func(code int, err error) int {
		fmt.Fprintf(stderr, "prixquery: %v\n", err)
		return code
	}
	fs := flag.NewFlagSet("prixquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("index", "", "index directory (required)")
		unordered = fs.Bool("unordered", false, "find unordered twig matches (§5.7)")
		nogap     = fs.Bool("nomaxgap", false, "disable MaxGap pruning (Theorem 4)")
		countOnly = fs.Bool("count", false, "print only the match count")
		limit     = fs.Int("limit", 20, "maximum matches to print")
		pool      = fs.Int("pool", 0, "buffer pool pages (default 2000)")
		par       = fs.Int("parallelism", 0, "query worker cap (0 = GOMAXPROCS, 1 = serial); results are identical at every setting")
		trace     = fs.Bool("trace", false, "print the per-stage execution span tree after the results")
		timeout   = fs.Duration("timeout", 0, "per-query deadline (0 = none)")
		recon     = fs.Int("reconstruct", -1, "instead of querying, rebuild document N from the index and print it")
		asOf      = fs.Uint64("as-of", 0, "answer at this MVCC version (0 = latest); requires a versioned index")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *dir == "" {
		return fail(exitUsage, fmt.Errorf("usage: prixquery -index DIR 'XPATH'"))
	}
	// A topology.json in the directory selects the sharded scatter-gather
	// path; both sources run through the same executor below.
	var (
		src         core.QuerySource
		reconstruct func(uint32) (*core.Document, error)
	)
	if _, terr := core.LoadShardTopology(*dir); terr == nil {
		co, err := core.OpenShardedIndex(*dir, core.Options{BufferPoolPages: *pool}, core.ShardConfig{
			// Compacted replicas keep their files under an epoch
			// subdirectory; the resolver follows each CURRENT pointer.
			ResolveDir: core.ResolveIndexDir,
		})
		if err != nil {
			return fail(exitError, err)
		}
		defer co.Close()
		src = co
		reconstruct = co.ReconstructDocument
	} else {
		// A compacted directory holds only a CURRENT pointer to the live
		// epoch; plain directories resolve to themselves.
		resolved, err := core.ResolveIndexDir(*dir)
		if err != nil {
			return fail(exitError, err)
		}
		ix, err := core.OpenIndex(resolved, core.Options{BufferPoolPages: *pool})
		if err != nil {
			return fail(exitError, err)
		}
		src = ix
		reconstruct = ix.ReconstructDocument
	}
	if *recon >= 0 {
		doc, err := reconstruct(uint32(*recon))
		if err != nil {
			return fail(exitError, err)
		}
		if err := doc.WriteXML(stdout); err != nil {
			return fail(exitError, err)
		}
		fmt.Fprintln(stdout)
		return exitOK
	}
	if fs.NArg() != 1 {
		return fail(exitUsage, fmt.Errorf("usage: prixquery -index DIR 'XPATH'"))
	}
	q, err := core.ParseQuery(fs.Arg(0))
	if err != nil {
		return fail(exitUsage, err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// One-shot execution: no result cache, same path as the HTTP service.
	exec := core.NewExecutor(src, -1, 0, nil)
	var tr *core.Trace
	if *trace {
		tr = core.NewTrace(fs.Arg(0))
	}
	res, err := exec.Execute(ctx, q, core.QueryOptions{
		Unordered:     *unordered,
		DisableMaxGap: *nogap,
		Parallelism:   *par,
		Trace:         tr,
		AsOf:          *asOf,
	})
	if err != nil {
		return fail(exitError, err)
	}
	ms, stats := res.Matches, res.Stats
	fmt.Fprintf(stdout, "%d matches in %v (%d range queries, %d candidates, %d pages read)\n",
		len(ms), stats.Elapsed, stats.RangeQueries, stats.Candidates, stats.PagesRead)
	if !*countOnly {
		for i, m := range ms {
			if i >= *limit {
				fmt.Fprintf(stdout, "... and %d more\n", len(ms)-*limit)
				break
			}
			fmt.Fprintf(stdout, "doc %d: images %v\n", m.DocID, m.Images)
		}
	}
	if tr != nil {
		tr.Finish()
		fmt.Fprintln(stdout)
		core.RenderTrace(stdout, tr)
	}
	// A degraded answer (quarantined documents skipped, or a whole shard
	// down) is partial: scripts must not mistake it for the full result.
	if stats.Degraded {
		if len(stats.DegradedShards) > 0 {
			names := make([]string, len(stats.DegradedShards))
			for i, id := range stats.DegradedShards {
				names[i] = core.ShardName(id)
			}
			if tr != nil {
				fmt.Fprintf(stdout, "\ndegraded shards: %s\n", strings.Join(names, ", "))
			}
			return fail(exitError, fmt.Errorf("degraded (partial) result: %s", strings.Join(names, ", ")))
		}
		return fail(exitError, fmt.Errorf("degraded (partial) result: %d documents quarantined",
			len(src.Quarantined())))
	}
	return exitOK
}
