// Command prixquery runs twig queries against a persistent PRIX index
// built by prixload.
//
// Usage:
//
//	prixquery -index /tmp/idx '//inproceedings[./author="Jim Gray"][./year="1990"]'
//	prixquery -index /tmp/idx -unordered -count '//a[./c]/b'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixquery: ")
	var (
		dir       = flag.String("index", "", "index directory (required)")
		unordered = flag.Bool("unordered", false, "find unordered twig matches (§5.7)")
		nogap     = flag.Bool("nomaxgap", false, "disable MaxGap pruning (Theorem 4)")
		countOnly = flag.Bool("count", false, "print only the match count")
		limit     = flag.Int("limit", 20, "maximum matches to print")
		pool      = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		recon     = flag.Int("reconstruct", -1, "instead of querying, rebuild document N from the index and print it")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("usage: prixquery -index DIR 'XPATH'")
	}
	ix, err := core.OpenIndex(*dir, core.Options{BufferPoolPages: *pool})
	if err != nil {
		log.Fatal(err)
	}
	if *recon >= 0 {
		doc, err := ix.ReconstructDocument(uint32(*recon))
		if err != nil {
			log.Fatal(err)
		}
		if err := doc.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: prixquery -index DIR 'XPATH'")
	}
	q, err := core.ParseQuery(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	ms, stats, err := ix.Match(q, core.MatchOptions{
		Unordered:     *unordered,
		DisableMaxGap: *nogap,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d matches in %v (%d range queries, %d candidates, %d pages read)\n",
		len(ms), stats.Elapsed, stats.RangeQueries, stats.Candidates, stats.PagesRead)
	if *countOnly {
		return
	}
	for i, m := range ms {
		if i >= *limit {
			fmt.Printf("... and %d more\n", len(ms)-*limit)
			break
		}
		fmt.Printf("doc %d: images %v\n", m.DocID, m.Images)
	}
}
