// Command prixload builds a persistent PRIX index, either from XML files,
// from one large streamed XML input, or from one of the built-in synthetic
// datasets. With -shards > 1 it builds a sharded layout instead: documents
// are partitioned by docid hash into shard-NNN/replica-NNN index directories
// under -out, described by topology.json, and served by prixserve's
// scatter-gather coordinator.
//
// The -stream mode runs the crash-resumable bulk ingest: the input is
// streamed one record at a time under -mem-budget, sorted posting runs are
// checkpointed to -out/.ingest, and an interrupted build restarts from the
// last durable checkpoint with -resume, producing a byte-identical index.
// Malformed records are skipped, counted and reported up to -skip-budget.
//
// Usage:
//
//	prixload -out /tmp/idx -dataset dblp -scale 1 [-extended]
//	prixload -out /tmp/idx -xml 'docs/*.xml' [-extended]
//	prixload -out /tmp/sharded -dataset dblp -shards 4 -replicas 2
//	prixload -out /tmp/idx -stream corpus.xml -split -mem-budget 64M
//	prixload -out /tmp/idx -stream corpus.xml -split -resume
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixload: ")
	var (
		out       = flag.String("out", "", "output directory for the index (required)")
		dataset   = flag.String("dataset", "", "built-in dataset: dblp, swissprot or treebank")
		scale     = flag.Int("scale", 1, "dataset scale factor")
		seed      = flag.Int64("seed", 1, "dataset generator seed")
		xmlGlob   = flag.String("xml", "", "glob of XML files to index (one document per file)")
		stream    = flag.String("stream", "", "one large XML file to bulk-ingest with bounded memory")
		resume    = flag.Bool("resume", false, "resume an interrupted -stream ingest from its last checkpoint")
		memBudget = flag.String("mem-budget", "", "memory budget for -stream, e.g. 64M or 1G (default 32M)")
		split     = flag.Bool("split", false, "treat each child of the -stream input's root element as its own document")
		skips     = flag.Int("skip-budget", 0, "malformed records tolerated (skipped and reported) before -stream fails")
		resyncTag = flag.String("resync-tag", "", "record tag -stream resynchronizes on after a malformed record (default: inferred)")
		workDir   = flag.String("work", "", "checkpoint directory for -stream (default <out>/.ingest)")
		extended  = flag.Bool("extended", false, "build an Extended-Prüfer index (EPIndex, for value queries)")
		pool      = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		shards    = flag.Int("shards", 1, "partition the collection into N shards (sharded layout when > 1)")
		replicas  = flag.Int("replicas", 1, "identical copies of each shard (sharded layout only)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	if *shards < 1 || *replicas < 1 {
		log.Fatal("-shards and -replicas must be >= 1")
	}
	sharded := *shards > 1 || *replicas > 1

	if *stream != "" {
		if *dataset != "" || *xmlGlob != "" {
			log.Fatal("-stream is exclusive with -dataset and -xml")
		}
		budget, err := parseBytes(*memBudget)
		if err != nil {
			log.Fatalf("-mem-budget: %v", err)
		}
		o := core.IngestOptions{
			Input:           *stream,
			Dir:             *out,
			WorkDir:         *workDir,
			Split:           *split,
			ResyncTag:       *resyncTag,
			Extended:        *extended,
			MemBudget:       budget,
			SkipBudget:      *skips,
			BufferPoolPages: *pool,
		}
		if sharded {
			o.Shards = *shards
			o.Replicas = *replicas
		}
		var rep *core.IngestReport
		if *resume {
			rep, err = core.ResumeIngest(o)
			if errors.Is(err, core.ErrNoIngestCheckpoint) {
				log.Printf("no checkpoint under %s; starting a fresh ingest", filepath.Join(*out, ".ingest"))
				rep, err = core.StreamIngest(o)
			}
		} else {
			rep, err = core.StreamIngest(o)
		}
		if err != nil {
			log.Fatal(err)
		}
		printIngestReport(rep, *out, *extended)
		return
	}

	switch {
	case *xmlGlob != "":
		paths, err := filepath.Glob(*xmlGlob)
		if err != nil {
			log.Fatal(err)
		}
		if len(paths) == 0 {
			log.Fatalf("no files match %q", *xmlGlob)
		}
		sort.Strings(paths)
		buildFromFiles(paths, *out, sharded, core.ShardBuildConfig{
			Shards:          *shards,
			Replicas:        *replicas,
			Extended:        *extended,
			BufferPoolPages: *pool,
		})
	case *dataset != "":
		ds, err := datagen.ByName(*dataset, *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
		buildFromDocs(ds.Docs, *out, sharded, core.ShardBuildConfig{
			Shards:          *shards,
			Replicas:        *replicas,
			Extended:        *extended,
			BufferPoolPages: *pool,
		})
	default:
		log.Fatal("one of -dataset, -xml or -stream is required")
	}
}

// buildFromFiles indexes one document per file without ever holding more
// than one parsed document in memory: the plain build feeds an incremental
// builder, the sharded build streams one pass per shard.
func buildFromFiles(paths []string, out string, sharded bool, cfg core.ShardBuildConfig) {
	source := func() (func() (*core.Document, error), error) {
		i := 0
		return func() (*core.Document, error) {
			if i >= len(paths) {
				return nil, io.EOF
			}
			p := paths[i]
			f, err := os.Open(p)
			if err != nil {
				return nil, err
			}
			doc, err := core.ParseXML(i, f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			i++
			return doc, nil
		}, nil
	}
	if sharded {
		topo, err := core.BuildShardedIndexStream(out, source, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printShardedSummary(topo, out)
		return
	}
	b, err := core.NewIndexBuilder(core.Options{
		Extended:        cfg.Extended,
		Dir:             out,
		BufferPoolPages: cfg.BufferPoolPages,
	})
	if err != nil {
		log.Fatal(err)
	}
	next, _ := source()
	for {
		doc, err := next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			b.Abort()
			log.Fatal(err)
		}
		if err := b.Add(doc); err != nil {
			b.Abort()
			log.Fatal(err)
		}
	}
	ix, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	printIndexSummary(ix, out)
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
}

// buildFromDocs indexes an in-memory collection (the synthetic datasets,
// which the generator materializes anyway).
func buildFromDocs(docs []*core.Document, out string, sharded bool, cfg core.ShardBuildConfig) {
	if sharded {
		topo, err := core.BuildShardedIndex(out, docs, cfg)
		if err != nil {
			log.Fatal(err)
		}
		printShardedSummary(topo, out)
		return
	}
	ix, err := core.BuildIndex(docs, core.Options{
		Extended:        cfg.Extended,
		Dir:             out,
		BufferPoolPages: cfg.BufferPoolPages,
	})
	if err != nil {
		log.Fatal(err)
	}
	printIndexSummary(ix, out)
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
}

func printIndexSummary(ix *core.Index, out string) {
	kind := "RPIndex"
	if ix.Extended() {
		kind = "EPIndex"
	}
	fmt.Printf("built %s over %d documents in %s\n", kind, ix.NumDocs(), out)
	if n, ok := ix.Stat("trienodes"); ok {
		seqs, _ := ix.Stat("sequences")
		fmt.Printf("virtual trie: %d nodes for %d sequences\n", n, seqs)
	}
}

func printShardedSummary(topo *core.ShardTopology, out string) {
	kind := "RPIndex"
	if topo.Extended {
		kind = "EPIndex"
	}
	fmt.Printf("built sharded %s over %d documents in %s: %d shards x %d replicas (epoch %d)\n",
		kind, topo.Docs, out, topo.Shards, topo.Replicas, topo.Epoch)
}

func printIngestReport(rep *core.IngestReport, out string, extended bool) {
	kind := "RPIndex"
	if extended {
		kind = "EPIndex"
	}
	mode := "ingested"
	if rep.Resumed {
		mode = "resumed and ingested"
	}
	layout := out
	if rep.Shards > 0 {
		layout = fmt.Sprintf("%s (%d shards)", out, rep.Shards)
	}
	fmt.Printf("%s %d documents into %s %s (%d checkpointed runs)\n",
		mode, rep.Docs, kind, layout, rep.Runs)
	if rep.Skips > 0 {
		fmt.Printf("skipped %d malformed records:\n", rep.Skips)
		for _, s := range rep.SkipDetail {
			fmt.Printf("  record %d at byte %d: %s\n", s.Ordinal, s.Offset, s.Error)
		}
		if rep.Skips > len(rep.SkipDetail) {
			fmt.Printf("  ... and %d more\n", rep.Skips-len(rep.SkipDetail))
		}
	}
}

// parseBytes reads a byte count with an optional K/M/G suffix ("64M").
func parseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch u := strings.ToUpper(s); {
	case strings.HasSuffix(u, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(u, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(u, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}
