// Command prixload builds a persistent PRIX index, either from XML files or
// from one of the built-in synthetic datasets. With -shards > 1 it builds a
// sharded layout instead: documents are partitioned by docid hash into
// shard-NNN/replica-NNN index directories under -out, described by
// topology.json, and served by prixserve's scatter-gather coordinator.
//
// Usage:
//
//	prixload -out /tmp/idx -dataset dblp -scale 1 [-extended]
//	prixload -out /tmp/idx -xml 'docs/*.xml' [-extended]
//	prixload -out /tmp/sharded -dataset dblp -shards 4 -replicas 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prixload: ")
	var (
		out      = flag.String("out", "", "output directory for the index (required)")
		dataset  = flag.String("dataset", "", "built-in dataset: dblp, swissprot or treebank")
		scale    = flag.Int("scale", 1, "dataset scale factor")
		seed     = flag.Int64("seed", 1, "dataset generator seed")
		xmlGlob  = flag.String("xml", "", "glob of XML files to index instead of a dataset")
		extended = flag.Bool("extended", false, "build an Extended-Prüfer index (EPIndex, for value queries)")
		pool     = flag.Int("pool", 0, "buffer pool pages (default 2000)")
		shards   = flag.Int("shards", 1, "partition the collection into N shards (sharded layout when > 1)")
		replicas = flag.Int("replicas", 1, "identical copies of each shard (sharded layout only)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	if *shards < 1 || *replicas < 1 {
		log.Fatal("-shards and -replicas must be >= 1")
	}
	var docs []*core.Document
	switch {
	case *xmlGlob != "":
		paths, err := filepath.Glob(*xmlGlob)
		if err != nil {
			log.Fatal(err)
		}
		if len(paths) == 0 {
			log.Fatalf("no files match %q", *xmlGlob)
		}
		sort.Strings(paths)
		for i, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				log.Fatal(err)
			}
			doc, err := core.ParseXML(i, f)
			f.Close()
			if err != nil {
				log.Fatalf("%s: %v", p, err)
			}
			docs = append(docs, doc)
		}
	case *dataset != "":
		ds, err := datagen.ByName(*dataset, *scale, *seed)
		if err != nil {
			log.Fatal(err)
		}
		docs = ds.Docs
	default:
		log.Fatal("one of -dataset or -xml is required")
	}
	if *shards > 1 || *replicas > 1 {
		topo, err := core.BuildShardedIndex(*out, docs, core.ShardBuildConfig{
			Shards:          *shards,
			Replicas:        *replicas,
			Extended:        *extended,
			BufferPoolPages: *pool,
		})
		if err != nil {
			log.Fatal(err)
		}
		kind := "RPIndex"
		if topo.Extended {
			kind = "EPIndex"
		}
		fmt.Printf("built sharded %s over %d documents in %s: %d shards x %d replicas (epoch %d)\n",
			kind, topo.Docs, *out, topo.Shards, topo.Replicas, topo.Epoch)
		return
	}
	ix, err := core.BuildIndex(docs, core.Options{
		Extended:        *extended,
		Dir:             *out,
		BufferPoolPages: *pool,
	})
	if err != nil {
		log.Fatal(err)
	}
	kind := "RPIndex"
	if ix.Extended() {
		kind = "EPIndex"
	}
	fmt.Printf("built %s over %d documents in %s\n", kind, ix.NumDocs(), *out)
	if n, ok := ix.Stat("trienodes"); ok {
		seqs, _ := ix.Stat("sequences")
		fmt.Printf("virtual trie: %d nodes for %d sequences\n", n, seqs)
	}
}
