# Standard developer entry points. Everything is stdlib-only Go; no
# generated code, no external tools beyond the go toolchain.

GO ?= go

.PHONY: all build test race vet fuzz chaos bench bench-smoke serve clean ci cover differential shard-e2e ingest-e2e compact-e2e hot-e2e versions-e2e

all: build vet test

# Everything CI runs, in one target, so local and CI results agree.
ci: build vet test race differential cover shard-e2e ingest-e2e compact-e2e hot-e2e versions-e2e fuzz chaos bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages (full ./... under
# -race is slow; these are the packages with shared mutable state). btree is
# included for the crash-recovery sweep, which must be panic- and race-free.
race:
	$(GO) test -race ./internal/server ./internal/prix ./internal/pager ./internal/btree ./internal/bench

vet:
	$(GO) vet ./...

# Short fuzz passes over the parsing/encoding boundaries: the query parser
# (the service boundary), the docstore record decoder (the corruption
# boundary), the trace/slow-log JSON encoder (the ?trace=1 boundary) and the
# dynamic labeler's range-allocation invariants (the insert boundary).
fuzz:
	$(GO) test ./internal/twig -run FuzzParseQuery -fuzz FuzzParseQuery -fuzztime 30s
	$(GO) test ./internal/docstore -run FuzzDecodeRecord -fuzz FuzzDecodeRecord -fuzztime 30s
	$(GO) test ./internal/obs -run FuzzSpanJSON -fuzz FuzzSpanJSON -fuzztime 30s
	$(GO) test ./internal/vtrie -run FuzzDynamicLabeler -fuzz FuzzDynamicLabeler -fuzztime 30s
	$(GO) test ./internal/mvcc -run FuzzSeqDiffPatch -fuzz FuzzSeqDiffPatch -fuzztime 30s
	$(GO) test ./internal/prix -run FuzzAsOfVersionMap -fuzz FuzzAsOfVersionMap -fuzztime 30s

# The oracle-backed differential suite: every engine (PRIX serial/parallel,
# MatchExhaustive, TwigStack, TwigStackXB, ViST) against the brute-force
# embedding oracle, ordered and unordered, on generated and sample docs.
differential:
	$(GO) test ./internal/prix -run Differential -count=1

# Coverage floors for the engine and the observability layer. The floors sit
# a few points under measured coverage (internal/prix 82.0%, internal/obs
# 84.9% when the floors were set) so refactors have headroom but a PR that
# lands significant untested code fails here.
cover:
	$(GO) test -coverprofile=cover-prix.out ./internal/prix > /dev/null
	$(GO) test -coverprofile=cover-obs.out ./internal/obs > /dev/null
	$(GO) test -coverprofile=cover-ingest.out -short ./internal/ingest > /dev/null
	$(GO) test -coverprofile=cover-compact.out ./internal/compact > /dev/null
	$(GO) test -coverprofile=cover-hot.out ./internal/hot > /dev/null
	$(GO) test -coverprofile=cover-mvcc.out ./internal/mvcc > /dev/null
	@$(GO) tool cover -func=cover-prix.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/prix coverage %s%% (floor 78%%)\n", $$3; if ($$3+0 < 78.0) exit 1 }'
	@$(GO) tool cover -func=cover-obs.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/obs coverage %s%% (floor 80%%)\n", $$3; if ($$3+0 < 80.0) exit 1 }'
	@$(GO) tool cover -func=cover-ingest.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/ingest coverage %s%% (floor 75%%)\n", $$3; if ($$3+0 < 75.0) exit 1 }'
	@$(GO) tool cover -func=cover-compact.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/compact coverage %s%% (floor 75%%)\n", $$3; if ($$3+0 < 75.0) exit 1 }'
	@$(GO) tool cover -func=cover-hot.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/hot coverage %s%% (floor 75%%)\n", $$3; if ($$3+0 < 75.0) exit 1 }'
	@$(GO) tool cover -func=cover-mvcc.out | awk '$$1=="total:" { sub("%","",$$3); printf "internal/mvcc coverage %s%% (floor 75%%)\n", $$3; if ($$3+0 < 75.0) exit 1 }'
	@rm -f cover-prix.out cover-obs.out cover-ingest.out cover-compact.out cover-hot.out cover-mvcc.out

# Multi-shard serving end to end, under the race detector: scatter-gather
# query over a live HTTP server, quarantine one shard via a corrupt page,
# partial Degraded answer naming the shard, online /repair, full answer
# again. Plus the shard package's differential and failover suites.
shard-e2e:
	$(GO) test -race ./internal/server -run 'TestShardServerE2E|TestShardedServerMatchesSingleIndex|TestTopologyEpochInCacheKey' -count=1
	$(GO) test -race ./internal/shard -count=1

# Streaming bulk ingest end to end, under the race detector: a corpus 20x
# the memory budget streamed through the three-stage pipeline with peak heap
# pinned under a GC memory limit, power-cut sweeps over every write point
# (run files, manifest commits, spill chunks, index pages, replica clones,
# topology) with the resumed index asserted byte-identical to an
# uninterrupted build, and the malformed-record skip budget (counts, byte
# offsets, budget exhaustion). The record cursor's checkpoint/resume
# contract is covered in the same pass.
ingest-e2e:
	$(GO) test -race ./internal/ingest -count=1
	$(GO) test -race ./internal/xmltree -run 'Cursor|Resume|ParseError' -count=1

# Online compaction end to end, under the race detector: concurrent queries
# and inserts across a zero-downtime epoch swap (answers asserted identical
# to an uncompacted twin), power-cut sweeps over every write ordinal of a
# compaction — plain and sharded — with byte-identical resume or an
# untouched old epoch, the scrub-during-swap gate, and the POST /compact
# serving surface (epoch bump, gauges, 409 on overlap).
compact-e2e:
	$(GO) test -race ./internal/compact -count=1
	$(GO) test -race ./internal/server -run 'TestCompactEndpoint' -count=1

# Compressed hot tier end to end, under the race detector: the byte-identity
# differential (hot vs uncompressed twin across every query shape, serial and
# parallel, with a zero-physical-reads check on a resident corpus), the
# dynamic write path racing queries against tier invalidations, eviction
# under budget pressure, and the server's /stats//metrics residency surface.
hot-e2e:
	$(GO) test -race ./internal/prix -run 'TestHot' -count=1
	$(GO) test -race ./internal/hot -count=1
	$(GO) test -race ./internal/server -run 'TestHotTierSurfaces' -count=1

# Document versioning end to end, under the race detector: the metamorphic
# mutation suite (insert-then-delete, update-vs-fresh-build, delete-then-
# reinsert, scripted AS OF history replay — all against the brute-force
# embedding oracle), power-cut sweeps over every write ordinal of a Delete/
# Update/Patch commit (plain and 2x2 sharded), hot-tier invalidation at the
# mutation sites, compaction tombstone GC under the retention window, the
# version-map/diff unit suite, and the fuzz seed corpora.
versions-e2e:
	$(GO) test -race ./internal/prix -run 'TestMetamorphic|TestVersion|TestHotInvalidateMutations|FuzzAsOfVersionMap' -count=1
	$(GO) test -race ./internal/shard -run 'TestVersionCrashSweepSharded' -count=1
	$(GO) test -race ./internal/compact -run 'TestCompactVersionRetention' -count=1
	$(GO) test -race ./internal/mvcc -count=1

# Chaos stage: fault-injection and self-healing end to end. Power-cut sweeps
# across every write point of a commit and of an online repair, bit-flip
# corruption that must be scrub-detected and auto-repaired under live
# queries, and snapshot restore for the unrepairable cases.
chaos:
	$(GO) test ./internal/pager -run 'Crash|Torn|Fault' -count=1
	$(GO) test ./internal/prix -run 'Crash|BitFlip|Repair|Snapshot' -count=1
	$(GO) test -race ./internal/scrub -count=1

bench:
	$(GO) run ./cmd/prixbench -table all -scale 1

# Fast parallel-pipeline check: the serial-vs-parallel comparison on one
# bundled dataset (the table asserts identical match counts, so it doubles
# as a differential test), plus one iteration of the in-package benchmark.
bench-smoke:
	$(GO) run ./cmd/prixbench -table parallel -datasets SWISSPROT
	$(GO) test ./internal/prix -run XXX -bench UnorderedArrangements -benchtime 1x

serve:
	$(GO) run ./cmd/prixbench -table serving

clean:
	$(GO) clean ./...
