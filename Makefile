# Standard developer entry points. Everything is stdlib-only Go; no
# generated code, no external tools beyond the go toolchain.

GO ?= go

.PHONY: all build test race vet fuzz bench serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages (full ./... under
# -race is slow; these are the packages with shared mutable state).
race:
	$(GO) test -race ./internal/server ./internal/prix ./internal/pager ./internal/bench

vet:
	$(GO) vet ./...

# Short fuzz pass over the query parser (the service boundary).
fuzz:
	$(GO) test ./internal/twig -run FuzzParseQuery -fuzz FuzzParseQuery -fuzztime 30s

bench:
	$(GO) run ./cmd/prixbench -table all -scale 1

serve:
	$(GO) run ./cmd/prixbench -table serving

clean:
	$(GO) clean ./...
