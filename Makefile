# Standard developer entry points. Everything is stdlib-only Go; no
# generated code, no external tools beyond the go toolchain.

GO ?= go

.PHONY: all build test race vet fuzz chaos bench bench-smoke serve clean ci

all: build vet test

# Everything CI runs, in one target, so local and CI results agree.
ci: build vet test race fuzz chaos bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages (full ./... under
# -race is slow; these are the packages with shared mutable state). btree is
# included for the crash-recovery sweep, which must be panic- and race-free.
race:
	$(GO) test -race ./internal/server ./internal/prix ./internal/pager ./internal/btree ./internal/bench

vet:
	$(GO) vet ./...

# Short fuzz passes over the two parsing boundaries: the query parser (the
# service boundary) and the docstore record decoder (the corruption boundary).
fuzz:
	$(GO) test ./internal/twig -run FuzzParseQuery -fuzz FuzzParseQuery -fuzztime 30s
	$(GO) test ./internal/docstore -run FuzzDecodeRecord -fuzz FuzzDecodeRecord -fuzztime 30s

# Chaos stage: fault-injection and self-healing end to end. Power-cut sweeps
# across every write point of a commit and of an online repair, bit-flip
# corruption that must be scrub-detected and auto-repaired under live
# queries, and snapshot restore for the unrepairable cases.
chaos:
	$(GO) test ./internal/pager -run 'Crash|Torn|Fault' -count=1
	$(GO) test ./internal/prix -run 'Crash|BitFlip|Repair|Snapshot' -count=1
	$(GO) test -race ./internal/scrub -count=1

bench:
	$(GO) run ./cmd/prixbench -table all -scale 1

# Fast parallel-pipeline check: the serial-vs-parallel comparison on one
# bundled dataset (the table asserts identical match counts, so it doubles
# as a differential test), plus one iteration of the in-package benchmark.
bench-smoke:
	$(GO) run ./cmd/prixbench -table parallel -datasets SWISSPROT
	$(GO) test ./internal/prix -run XXX -bench UnorderedArrangements -benchtime 1x

serve:
	$(GO) run ./cmd/prixbench -table serving

clean:
	$(GO) clean ./...
